//! Drop-in GEMM entry points.
//!
//! The paper positions the CAKE library as "a drop-in replacement for MM
//! calls used by existing frameworks that does not require manual tuning".
//! [`cake_sgemm`] / [`cake_dgemm`] mirror that: pass matrices and a
//! [`CakeConfig`] (all fields defaulted) and the CB block shape, schedule,
//! kernel, and thread count are chosen automatically.
//!
//! Semantics are `C += A * B` (BLAS `alpha = 1`, `beta = 1`). Zero `C`
//! first for the `beta = 0` convention.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Mutex;

use cake_kernels::select::KernelSelect;
use cake_matrix::{Bf16, Element, Matrix, MatrixView, MatrixViewMut};

use crate::executor::{execute, execute_with_stats_in, ExecStats};
use crate::pool::ThreadPool;
use crate::shape::CbBlockShape;
use crate::sync::BarrierMode;
use crate::topology;
use crate::tune::{self, AlphaSource, TuneDecision};
use crate::workspace::GemmWorkspace;

/// Configuration for a CAKE GEMM call. `Default` gives a sensible fully
/// automatic setup.
#[derive(Debug, Clone)]
pub struct CakeConfig {
    /// Worker threads (`p`). `None` = all available cores.
    pub threads: Option<usize>,
    /// CB-block aspect factor. `None` = derive from `dram_bw_gbs` when
    /// given (Section 3.2), else 1.0.
    pub alpha: Option<f64>,
    /// Available DRAM bandwidth in GB/s, if known; drives `alpha`
    /// auto-selection.
    pub dram_bw_gbs: Option<f64>,
    /// Per-core private (L2) cache size in bytes.
    pub l2_bytes: usize,
    /// Shared last-level cache size in bytes.
    pub llc_bytes: usize,
    /// Core clock in GHz (only used for `alpha` auto-selection).
    pub freq_ghz: f64,
    /// Force the portable kernel (skip SIMD dispatch) — for debugging and
    /// baseline measurements.
    pub force_portable_kernel: bool,
    /// Pin worker `i` to core `i % cores` (Linux `sched_setaffinity`;
    /// no-op elsewhere). Off by default: pinning helps dedicated-machine
    /// benchmarks but hurts co-tenant workloads.
    pub pin_cores: bool,
    /// Pin the kernel tier (set by [`autotuned_for`](Self::autotuned_for)
    /// from a cached [`tune::TunedEntry`]). Falls back down the dispatch
    /// ladder when this host cannot run the pinned tier for a dtype.
    pub kernel_tier: Option<cake_kernels::KernelTier>,
    /// Use this block shape instead of the analytic derivation (still
    /// clamped to each problem's extents). Set by
    /// [`autotuned_for`](Self::autotuned_for) from the autotune cache.
    pub fixed_shape: Option<CbBlockShape>,
}

impl Default for CakeConfig {
    fn default() -> Self {
        Self {
            threads: None,
            alpha: None,
            dram_bw_gbs: None,
            // Conservative desktop-class defaults; override per Table 2
            // configs for the paper experiments.
            l2_bytes: 256 * 1024,
            llc_bytes: 16 * 1024 * 1024,
            freq_ghz: 3.0,
            force_portable_kernel: false,
            pin_cores: false,
            kernel_tier: None,
            fixed_shape: None,
        }
    }
}

impl CakeConfig {
    /// Config pinned to `p` threads.
    pub fn with_threads(p: usize) -> Self {
        Self {
            threads: Some(p),
            ..Self::default()
        }
    }

    /// The paper's auto-tuner entry point: a config for `p` cores over an
    /// LLC of `llc_bytes`. The block's M-extent grows linearly with `p`
    /// (Section 3: `m = p*k`) because [`CbBlockShape::derive`] builds
    /// `p * mc` row blocks, while `mc` itself is bounded by the Section
    /// 4.3 LRU fit `C + 2(A + B) <= S` over the given LLC — see
    /// [`CbBlockShape::mc_bounds`]. All other knobs stay automatic
    /// (`alpha` from the LLC-fill rule, effective worker count clamped to
    /// host topology at pool construction).
    pub fn tuned_for(p: usize, llc_bytes: usize) -> Self {
        Self {
            threads: Some(p),
            llc_bytes,
            ..Self::default()
        }
    }

    /// [`tuned_for`](Self::tuned_for), upgraded by the autotune cache: when
    /// `target/cake-tune.json` (or `$CAKE_TUNE_CACHE`) holds a winner for
    /// exactly `(m, k, n, dtype, p)` — recorded by `cakectl tune` or the
    /// `cake-bench` tuner — the returned config pins that winner's block
    /// shape and kernel tier. With no cache hit this is `tuned_for`
    /// unchanged, so the call can never do worse than the closed form it
    /// replaces. `dtype` is an element NAME: `"f32"`/`"f64"`/`"int8"`/
    /// `"bf16"`.
    pub fn autotuned_for(m: usize, k: usize, n: usize, dtype: &str, p: usize) -> Self {
        let mut cfg = Self::tuned_for(p, Self::default().llc_bytes);
        // audit: cold one cache probe per config construction, no GEMM yet
        if let Some(e) = tune::TuneTable::load_default()
            .and_then(|t| t.lookup(m, k, n, dtype, p).cloned())
        {
            cfg.fixed_shape = Some(CbBlockShape::fixed(p.max(1), e.mc, e.kc, e.nc));
            cfg.kernel_tier = cake_kernels::KernelTier::parse(&e.tier);
        }
        cfg
    }

    /// Resolve the thread count.
    pub fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        })
    }

    /// Resolve the CB block shape for a problem of the given extents and a
    /// kernel of shape `mr x nr` over elements of `elem_bytes`.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_shape(
        &self,
        m: usize,
        k: usize,
        n: usize,
        mr: usize,
        nr: usize,
        elem_bytes: usize,
        macs_per_cycle: f64,
    ) -> CbBlockShape {
        self.explain_shape(m, k, n, mr, nr, elem_bytes, macs_per_cycle)
            .shape
    }

    /// [`resolve_shape`](Self::resolve_shape) with its full paper trail:
    /// every bound the tuner consulted, the chosen `alpha` and why, the
    /// topology clamp, and the barrier mode the run will use — rendered by
    /// `cakectl gemm --explain`.
    #[allow(clippy::too_many_arguments)]
    pub fn explain_shape(
        &self,
        m: usize,
        k: usize,
        n: usize,
        mr: usize,
        nr: usize,
        elem_bytes: usize,
        macs_per_cycle: f64,
    ) -> TuneDecision {
        let p = self.resolved_threads();
        // Provisional shape at alpha = 1 to learn the cache-constrained mc.
        let probe = CbBlockShape::derive(p, 1.0, self.l2_bytes, self.llc_bytes, elem_bytes, mr, nr);
        let (alpha, alpha_source, analytic) = if let Some(fx) = self.fixed_shape {
            // Autotune-cache shape: re-key to the resolved p (the cache
            // stores the tuned p, which matches when the config came from
            // `autotuned_for`) and skip the analytic derivation.
            let fx = CbBlockShape::fixed(p, fx.mc, fx.kc, fx.nc)
                .with_outer_tiles(fx.ko_blocks, fx.no_blocks);
            (fx.alpha(), AlphaSource::Autotuned, fx)
        } else {
            let (alpha, alpha_source) = match self.alpha {
                Some(a) => (a, AlphaSource::Explicit),
                None => match self.dram_bw_gbs {
                    Some(bw) => (
                        tune::select_alpha(bw, probe.mc, macs_per_cycle, elem_bytes, self.freq_ghz),
                        AlphaSource::BandwidthModel,
                    ),
                    // No bandwidth hint: widen the block to use the spare
                    // LLC — a larger alpha only lowers the Eq. 2 demand.
                    None => (
                        tune::alpha_fill_llc(p, probe.mc.max(1), self.llc_bytes / elem_bytes),
                        AlphaSource::LlcFill,
                    ),
                },
            };
            let analytic =
                CbBlockShape::derive(p, alpha, self.l2_bytes, self.llc_bytes, elem_bytes, mr, nr);
            (alpha, alpha_source, analytic)
        };
        let shape = clamp_shape_to_problem(analytic, m, k, n, mr, nr);
        let (mc_llc, mc_l2) =
            CbBlockShape::mc_bounds(p, alpha.max(1.0), self.l2_bytes, self.llc_bytes, elem_bytes);
        let host_cores = topology::available_cores();
        let effective_p = topology::effective_p(p);
        TuneDecision {
            requested_p: p,
            effective_p,
            host_cores,
            barrier_mode: BarrierMode::auto(effective_p, host_cores),
            alpha,
            alpha_source,
            mc_l2,
            mc_llc,
            analytic,
            shape,
            lru_ok: shape.fits_llc_lru(self.llc_bytes, elem_bytes),
            kernel: "",
        }
    }

    /// The microkernel a GEMM through this config dispatches to for element
    /// type `T`: the portable tier when `force_portable_kernel` is set,
    /// else a pinned [`kernel_tier`](Self::kernel_tier) the host can run,
    /// otherwise the tier ladder's pick (honoring the `CAKE_KERNEL` cap).
    pub fn selected_kernel<T: KernelSelect>(&self) -> cake_kernels::Ukr<T> {
        if self.force_portable_kernel {
            return cake_kernels::portable_kernel::<T>();
        }
        if let Some(tier) = self.kernel_tier {
            if let Some(ukr) = cake_kernels::tier_kernel::<T>(tier) {
                return ukr;
            }
        }
        cake_kernels::best_kernel::<T>()
    }

    /// [`explain_shape`](Self::explain_shape) driven by the kernel this
    /// config actually dispatches to for `T`: the block geometry derives
    /// from the *selected* kernel's `(mr, nr)` and the decision records the
    /// kernel's name.
    pub fn explain_shape_for<T: KernelSelect>(
        &self,
        m: usize,
        k: usize,
        n: usize,
    ) -> TuneDecision {
        let ukr = self.selected_kernel::<T>();
        let mut d = self.explain_shape(
            m,
            k,
            n,
            ukr.mr(),
            ukr.nr(),
            T::BYTES,
            (ukr.mr() * ukr.nr()) as f64,
        );
        d.kernel = ukr.name();
        d
    }
}

/// Shrink an analytically derived shape so a small problem still spreads
/// across all `p` workers and blocks never exceed the matrix extents.
/// Outer (LLC-level) tile extents pass through untouched — they count
/// blocks, not elements, and the two-level schedule clamps them itself.
pub(crate) fn clamp_shape_to_problem(
    shape: CbBlockShape,
    m: usize,
    k: usize,
    n: usize,
    mr: usize,
    nr: usize,
) -> CbBlockShape {
    let p = shape.p;
    // Keep every worker busy: strip height at most ceil(M/p) (rounded up to
    // mr so edge strips stay kernel-friendly), then balanced so the final
    // M-block is not ragged.
    let strip = m.div_ceil(p).div_ceil(mr).max(1) * mr;
    let mc = CbBlockShape::balance_mc(m, p, shape.mc.min(strip).max(mr), mr);
    let kc = shape.kc.min(k.max(1));
    let nc = shape
        .nc
        .min(n.div_ceil(nr).max(1) * nr)
        .max(nr);
    CbBlockShape::fixed(p, mc, kc, nc).with_outer_tiles(shape.ko_blocks, shape.no_blocks)
}

/// Generic `C += A * B` with automatic CB-block configuration.
///
/// `C` is over the accumulator type `T::Acc` — identical to `T` for
/// f32/f64, widened for the narrow-dtype tier (`i8 -> i32`,
/// `Bf16 -> f32`), so int8 reductions are exact and bf16 reductions keep
/// f32 precision regardless of `K`.
///
/// # Panics
/// Panics on dimension mismatch (`A: MxK`, `B: KxN`, `C: MxN`).
pub fn cake_gemm<T: KernelSelect>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T::Acc>,
    cfg: &CakeConfig,
) {
    let (av, bv) = (a.view(), b.view());
    let mut cv = c.view_mut();
    cake_gemm_views(&av, &bv, &mut cv, cfg);
}

/// View-level entry point (strided / transposed operands welcome).
pub fn cake_gemm_views<T: KernelSelect>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T::Acc>,
    cfg: &CakeConfig,
) {
    let ukr = cfg.selected_kernel::<T>();
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let shape = cfg.resolve_shape(
        m,
        k,
        n,
        ukr.mr(),
        ukr.nr(),
        T::BYTES,
        (ukr.mr() * ukr.nr()) as f64,
    );
    // Requested p shaped the block; the spawned pool is clamped to the
    // cores this process can actually run on (topology::effective_p).
    let pool = ThreadPool::with_affinity(topology::effective_p(shape.p), cfg.pin_cores);
    execute(a, b, c, &shape, &ukr, &pool);
}

/// Single-precision drop-in GEMM: `C += A * B`.
pub fn cake_sgemm(a: &Matrix<f32>, b: &Matrix<f32>, c: &mut Matrix<f32>, cfg: &CakeConfig) {
    cake_gemm(a, b, c, cfg);
}

/// Double-precision drop-in GEMM: `C += A * B`.
pub fn cake_dgemm(a: &Matrix<f64>, b: &Matrix<f64>, c: &mut Matrix<f64>, cfg: &CakeConfig) {
    cake_gemm(a, b, c, cfg);
}

/// int8 GEMM with exact i32 accumulation: `C += A * B`. Dispatches to the
/// VNNI tier when the host has it, the AVX2 sign-extend kernel or the
/// portable kernel otherwise — bit-identical results on every tier.
pub fn cake_gemm_i8(a: &Matrix<i8>, b: &Matrix<i8>, c: &mut Matrix<i32>, cfg: &CakeConfig) {
    cake_gemm(a, b, c, cfg);
}

/// bf16 GEMM with f32 accumulation: `C += A * B`.
pub fn cake_gemm_bf16(a: &Matrix<Bf16>, b: &Matrix<Bf16>, c: &mut Matrix<f32>, cfg: &CakeConfig) {
    cake_gemm(a, b, c, cfg);
}

/// A reusable GEMM context: keeps the worker pool **and** one packed-operand
/// [`GemmWorkspace`] per element type alive across calls (e.g. one call per
/// DNN layer), so a steady stream of GEMMs performs zero heap allocations
/// after the first call per shape class.
pub struct CakeGemm {
    cfg: CakeConfig,
    pool: ThreadPool,
    /// `TypeId::of::<T>() -> GemmWorkspace<T>`; interior mutability so the
    /// hot call path stays `&self`.
    workspaces: Mutex<HashMap<TypeId, Box<dyn Any + Send>>>,
    last_stats: Mutex<ExecStats>,
}

impl CakeGemm {
    /// Build a context; spawns the worker pool once, clamped to the cores
    /// the host actually exposes (the requested p keeps shaping blocks).
    pub fn new(cfg: CakeConfig) -> Self {
        let p = topology::effective_p(cfg.resolved_threads());
        let pool = ThreadPool::with_affinity(p, cfg.pin_cores);
        Self {
            cfg,
            pool,
            workspaces: Mutex::new(HashMap::new()),
            last_stats: Mutex::new(ExecStats::default()),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CakeConfig {
        &self.cfg
    }

    /// Stats of the most recent [`gemm`](Self::gemm) call through this
    /// context (all-zero before the first call or after a zero-dim call).
    pub fn last_stats(&self) -> ExecStats {
        *self.last_stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// [`last_stats`](Self::last_stats), resetting the record to all-zero —
    /// lets a caller attribute GEMM work to a code region (e.g. one DNN
    /// layer): take a reading after the region and any zero result means no
    /// GEMM ran there.
    pub fn take_stats(&self) -> ExecStats {
        std::mem::take(&mut *self.last_stats.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// `C += A * B` reusing this context's pool and workspace (`C` over
    /// the accumulator type, as in [`cake_gemm`]).
    pub fn gemm<T: KernelSelect>(&self, a: &Matrix<T>, b: &Matrix<T>, c: &mut Matrix<T::Acc>) {
        let _ = self.gemm_with_stats(a, b, c);
    }

    /// [`gemm`](Self::gemm), returning the call's measured [`ExecStats`].
    pub fn gemm_with_stats<T: KernelSelect>(
        &self,
        a: &Matrix<T>,
        b: &Matrix<T>,
        c: &mut Matrix<T::Acc>,
    ) -> ExecStats {
        let ukr = self.cfg.selected_kernel::<T>();
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        if m == 0 || k == 0 || n == 0 {
            return ExecStats::default();
        }
        let shape = self.cfg.resolve_shape(
            m,
            k,
            n,
            ukr.mr(),
            ukr.nr(),
            T::BYTES,
            (ukr.mr() * ukr.nr()) as f64,
        );
        let (av, bv) = (a.view(), b.view());
        let mut cv = c.view_mut();
        let mut map = self.workspaces.lock().unwrap_or_else(|p| p.into_inner());
        let ws = map
            .entry(TypeId::of::<T>())
            // audit: cold first-use workspace creation, memoized per dtype
            .or_insert_with(|| Box::new(GemmWorkspace::<T>::new()) as Box<dyn Any + Send>)
            .downcast_mut::<GemmWorkspace<T>>()
            .expect("workspace map is keyed by element TypeId");
        let stats = execute_with_stats_in(&av, &bv, &mut cv, &shape, &ukr, &self.pool, ws);
        drop(map);
        *self.last_stats.lock().unwrap_or_else(|p| p.into_inner()) = stats;
        stats
    }
}

/// Operand orientation for [`cake_gemm_op`] (BLAS `trans` flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the operand transposed (free: only view strides change).
    Trans,
}

/// `C += op_a(A) * op_b(B)` — BLAS-style transpose flags, zero-copy.
pub fn cake_gemm_op<T: KernelSelect>(
    op_a: Op,
    a: &Matrix<T>,
    op_b: Op,
    b: &Matrix<T>,
    c: &mut Matrix<T::Acc>,
    cfg: &CakeConfig,
) {
    let av = a.view();
    let bv = b.view();
    let av = if op_a == Op::Trans { av.t() } else { av };
    let bv = if op_b == Op::Trans { bv.t() } else { bv };
    let mut cv = c.view_mut();
    cake_gemm_views(&av, &bv, &mut cv, cfg);
}

/// Full BLAS-semantics GEMM: `C = alpha * A * B + beta * C`.
///
/// `alpha`/`beta` here are the BLAS scalars, unrelated to the CB block's
/// aspect factor (`CakeConfig::alpha`). Fast paths: `beta = 1` skips the
/// C pre-scale, `alpha = 1` avoids the temporary product buffer. Limited
/// to dtypes that accumulate in their own type (`Acc = T`): the BLAS
/// scalar convention has no widened-C analogue.
pub fn cake_gemm_scaled<T: Element + KernelSelect<Acc = T>>(
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
    cfg: &CakeConfig,
) {
    if beta != T::ONE {
        for v in c.as_mut_slice() {
            *v = *v * beta;
        }
    }
    if alpha == T::ZERO {
        return;
    }
    if alpha == T::ONE {
        cake_gemm(a, b, c, cfg);
        return;
    }
    // General case: accumulate into a zero temporary, then fold in scaled.
    let mut t = Matrix::<T>::zeros(c.rows(), c.cols());
    cake_gemm(a, b, &mut t, cfg);
    for (dst, &src) in c.as_mut_slice().iter_mut().zip(t.as_slice()) {
        *dst += alpha * src;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_matrix::compare::assert_gemm_eq;
    use cake_matrix::init;

    fn naive<T: Element>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
        let mut c = Matrix::<T>::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f64;
                for kk in 0..a.cols() {
                    s += a.get(i, kk).to_f64() * b.get(kk, j).to_f64();
                }
                c.set(i, j, T::from_f64(s));
            }
        }
        c
    }

    #[test]
    fn sgemm_matches_reference_default_config() {
        let (m, k, n) = (70, 55, 90);
        let a = init::random::<f32>(m, k, 1);
        let b = init::random::<f32>(k, n, 2);
        let mut c = Matrix::<f32>::zeros(m, n);
        cake_sgemm(&a, &b, &mut c, &CakeConfig::default());
        assert_gemm_eq(&c, &naive(&a, &b), k);
    }

    #[test]
    fn dgemm_matches_reference() {
        let (m, k, n) = (33, 47, 29);
        let a = init::random::<f64>(m, k, 3);
        let b = init::random::<f64>(k, n, 4);
        let mut c = Matrix::<f64>::zeros(m, n);
        cake_dgemm(&a, &b, &mut c, &CakeConfig::with_threads(2));
        assert_gemm_eq(&c, &naive(&a, &b), k);
    }

    #[test]
    fn portable_kernel_path_matches() {
        let (m, k, n) = (25, 31, 17);
        let a = init::random::<f32>(m, k, 5);
        let b = init::random::<f32>(k, n, 6);
        let mut c = Matrix::<f32>::zeros(m, n);
        let cfg = CakeConfig {
            force_portable_kernel: true,
            threads: Some(2),
            ..CakeConfig::default()
        };
        cake_sgemm(&a, &b, &mut c, &cfg);
        assert_gemm_eq(&c, &naive(&a, &b), k);
    }

    #[test]
    fn explicit_alpha_and_bw_paths() {
        let (m, k, n) = (48, 48, 48);
        let a = init::random::<f32>(m, k, 7);
        let b = init::random::<f32>(k, n, 8);
        let expected = naive(&a, &b);

        for cfg in [
            CakeConfig {
                alpha: Some(2.0),
                threads: Some(2),
                ..CakeConfig::default()
            },
            CakeConfig {
                dram_bw_gbs: Some(2.0), // scarce: drives alpha up
                threads: Some(2),
                ..CakeConfig::default()
            },
        ] {
            let mut c = Matrix::<f32>::zeros(m, n);
            cake_sgemm(&a, &b, &mut c, &cfg);
            assert_gemm_eq(&c, &expected, k);
        }
    }

    #[test]
    fn context_reuse_across_layers() {
        let ctx = CakeGemm::new(CakeConfig::with_threads(2));
        let mut x = init::random::<f32>(16, 16, 9);
        for layer in 0..4 {
            let w = init::random::<f32>(16, 16, 100 + layer);
            let mut y = Matrix::<f32>::zeros(16, 16);
            ctx.gemm(&w, &x, &mut y);
            assert_gemm_eq(&y, &naive(&w, &x), 16);
            x = y;
        }
    }

    #[test]
    fn context_warm_calls_do_not_allocate() {
        let ctx = CakeGemm::new(CakeConfig::with_threads(2));
        let a = init::random::<f32>(48, 32, 41);
        let b = init::random::<f32>(32, 40, 42);
        let expected = naive(&a, &b);
        for call in 0..10 {
            let mut c = Matrix::<f32>::zeros(48, 40);
            let stats = ctx.gemm_with_stats(&a, &b, &mut c);
            if call == 0 {
                assert!(stats.allocations > 0, "cold call sizes the workspace");
            } else {
                assert_eq!(stats.allocations, 0, "warm call {call} allocated");
            }
            assert_eq!(ctx.last_stats(), stats);
            assert_gemm_eq(&c, &expected, 32);
        }
        // A second element type gets its own workspace without disturbing
        // the f32 one.
        let ad = init::random::<f64>(16, 16, 43);
        let bd = init::random::<f64>(16, 16, 44);
        let mut cd = Matrix::<f64>::zeros(16, 16);
        assert!(ctx.gemm_with_stats(&ad, &bd, &mut cd).allocations > 0);
        let mut c = Matrix::<f32>::zeros(48, 40);
        assert_eq!(ctx.gemm_with_stats(&a, &b, &mut c).allocations, 0);
    }

    #[test]
    fn i8_gemm_is_exact_and_warm_calls_do_not_allocate() {
        let (m, k, n) = (48, 40, 56);
        let a = init::random_i8(m, k, 61);
        let b = init::random_i8(k, n, 62);
        let mut expected = Matrix::<i32>::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0i32;
                for kk in 0..k {
                    s += a.get(i, kk) as i32 * b.get(kk, j) as i32;
                }
                expected.set(i, j, s);
            }
        }
        // One-shot wrapper.
        let mut c = Matrix::<i32>::zeros(m, n);
        cake_gemm_i8(&a, &b, &mut c, &CakeConfig::with_threads(2));
        assert_eq!(c.as_slice(), expected.as_slice());
        // Context path: the int8 workspace pools like any other dtype —
        // zero heap allocations once warm.
        let ctx = CakeGemm::new(CakeConfig::with_threads(2));
        for call in 0..4 {
            let mut c = Matrix::<i32>::zeros(m, n);
            let stats = ctx.gemm_with_stats(&a, &b, &mut c);
            if call == 0 {
                assert!(stats.allocations > 0, "cold call sizes the workspace");
            } else {
                assert_eq!(stats.allocations, 0, "warm int8 call {call} allocated");
            }
            assert_eq!(c.as_slice(), expected.as_slice());
        }
    }

    #[test]
    fn bf16_gemm_matches_oracle_and_warm_calls_do_not_allocate() {
        let (m, k, n) = (32, 24, 40);
        let af = init::random::<f32>(m, k, 63);
        let bf = init::random::<f32>(k, n, 64);
        let a = Matrix::from_fn(m, k, |i, j| Bf16::from_f32(af.get(i, j)));
        let b = Matrix::from_fn(k, n, |i, j| Bf16::from_f32(bf.get(i, j)));
        let mut expected = Matrix::<f32>::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for kk in 0..k {
                    s += a.get(i, kk).to_f32() as f64 * b.get(kk, j).to_f32() as f64;
                }
                expected.set(i, j, s as f32);
            }
        }
        let mut c = Matrix::<f32>::zeros(m, n);
        cake_gemm_bf16(&a, &b, &mut c, &CakeConfig::with_threads(2));
        assert_gemm_eq(&c, &expected, k);
        let ctx = CakeGemm::new(CakeConfig::with_threads(2));
        for call in 0..4 {
            let mut c = Matrix::<f32>::zeros(m, n);
            let stats = ctx.gemm_with_stats(&a, &b, &mut c);
            if call == 0 {
                assert!(stats.allocations > 0, "cold call sizes the workspace");
            } else {
                assert_eq!(stats.allocations, 0, "warm bf16 call {call} allocated");
            }
            assert_gemm_eq(&c, &expected, k);
        }
    }

    #[test]
    fn shape_clamp_keeps_all_workers_busy() {
        let cfg = CakeConfig::with_threads(4);
        // Small M: strip must shrink so all 4 workers see rows.
        let s = cfg.resolve_shape(40, 512, 512, 6, 16, 4, 96.0);
        assert!(s.mc * 4 >= 40, "strips must cover M");
        assert!(s.mc <= 12, "mc should shrink to ~M/p rounded to mr, got {}", s.mc);
    }

    #[test]
    fn pinned_config_still_computes_correctly() {
        let cfg = CakeConfig {
            pin_cores: true,
            threads: Some(2),
            ..CakeConfig::default()
        };
        let a = init::random::<f32>(32, 24, 51);
        let b = init::random::<f32>(24, 40, 52);
        let expected = naive(&a, &b);
        // One-shot path.
        let mut c = Matrix::<f32>::zeros(32, 40);
        cake_sgemm(&a, &b, &mut c, &cfg);
        assert_gemm_eq(&c, &expected, 24);
        // Context path: stats must report the clamped worker count and
        // remember what was requested.
        let ctx = CakeGemm::new(cfg);
        let mut c2 = Matrix::<f32>::zeros(32, 40);
        let stats = ctx.gemm_with_stats(&a, &b, &mut c2);
        assert_gemm_eq(&c2, &expected, 24);
        assert_eq!(stats.workers, crate::topology::effective_p(2));
        assert_eq!(stats.requested_workers, 2);
    }

    #[test]
    fn tuned_for_derives_paper_shape_growth() {
        // Section 3: the block's M-extent grows linearly with p. Use an
        // oversized L2 so the LLC LRU rule is the binding constraint and
        // the shrink of mc with p is visible too.
        let big = CakeConfig {
            l2_bytes: 64 * 1024 * 1024,
            ..CakeConfig::tuned_for(1, 20 * 1024 * 1024)
        };
        let s1 = big.resolve_shape(4096, 4096, 4096, 6, 16, 4, 96.0);
        let big4 = CakeConfig {
            l2_bytes: 64 * 1024 * 1024,
            ..CakeConfig::tuned_for(4, 20 * 1024 * 1024)
        };
        let s4 = big4.resolve_shape(4096, 4096, 4096, 6, 16, 4, 96.0);
        assert_eq!(s1.p, 1);
        assert_eq!(s4.p, 4);
        assert_eq!(s4.m_block(), 4 * s4.mc, "m = p * k growth");
        assert!(s4.mc < s1.mc, "LLC-bound mc must shrink with p");
        // Both shapes obey the Section 4.3 LRU fit for the tuned LLC.
        assert!(s1.fits_llc_lru(20 * 1024 * 1024, 4));
        assert!(s4.fits_llc_lru(20 * 1024 * 1024, 4));
    }

    #[test]
    fn explain_shape_records_the_decision() {
        let cfg = CakeConfig::tuned_for(2, 16 * 1024 * 1024);
        let d = cfg.explain_shape(256, 256, 256, 6, 16, 4, 96.0);
        assert_eq!(d.requested_p, 2);
        assert_eq!(d.effective_p, crate::topology::effective_p(2));
        assert_eq!(d.host_cores, crate::topology::available_cores());
        assert_eq!(d.shape, cfg.resolve_shape(256, 256, 256, 6, 16, 4, 96.0));
        assert_eq!(d.alpha_source, crate::tune::AlphaSource::LlcFill);
        assert!(d.alpha >= 1.0);
        assert!(d.mc_l2 > 0 && d.mc_llc > 0);
        assert!(d.lru_ok, "tuned shape must satisfy the LRU rule");
        assert!(!d.render().is_empty());
        // Explicit alpha changes the recorded source.
        let cfg2 = CakeConfig {
            alpha: Some(2.0),
            ..cfg
        };
        let d2 = cfg2.explain_shape(256, 256, 256, 6, 16, 4, 96.0);
        assert_eq!(d2.alpha_source, crate::tune::AlphaSource::Explicit);
        assert_eq!(d2.alpha, 2.0);
        let cfg3 = CakeConfig {
            dram_bw_gbs: Some(8.0),
            ..CakeConfig::tuned_for(2, 16 * 1024 * 1024)
        };
        let d3 = cfg3.explain_shape(256, 256, 256, 6, 16, 4, 96.0);
        assert_eq!(d3.alpha_source, crate::tune::AlphaSource::BandwidthModel);
    }

    #[test]
    fn explain_shape_for_records_selected_kernel() {
        let cfg = CakeConfig::tuned_for(1, 16 * 1024 * 1024);
        let ukr = cfg.selected_kernel::<f32>();
        let d = cfg.explain_shape_for::<f32>(256, 256, 256);
        assert_eq!(d.kernel, ukr.name());
        assert_eq!(
            d.shape,
            cfg.resolve_shape(
                256,
                256,
                256,
                ukr.mr(),
                ukr.nr(),
                4,
                (ukr.mr() * ukr.nr()) as f64
            )
        );
        assert!(d.render().contains(d.kernel));
        // Forcing the portable tier is reflected in the decision.
        let portable = CakeConfig {
            force_portable_kernel: true,
            ..cfg
        };
        assert!(portable
            .explain_shape_for::<f32>(64, 64, 64)
            .kernel
            .starts_with("portable"));
    }

    #[test]
    fn fixed_shape_bypasses_derivation_but_still_clamps() {
        let tuned = CbBlockShape::fixed(2, 48, 192, 320);
        let cfg = CakeConfig {
            fixed_shape: Some(tuned),
            ..CakeConfig::with_threads(2)
        };
        // Roomy problem: the pinned shape comes through verbatim.
        let d = cfg.explain_shape(512, 512, 512, 6, 16, 4, 96.0);
        assert_eq!(d.alpha_source, AlphaSource::Autotuned);
        assert_eq!(d.shape, tuned);
        // Tiny problem: extents still clamp the pinned shape.
        let small = cfg.explain_shape(24, 32, 32, 6, 16, 4, 96.0);
        assert!(small.shape.kc <= 32);
        assert!(small.shape.mc < 48);
        // And the GEMM it drives stays correct.
        let a = init::random::<f32>(60, 70, 91);
        let b = init::random::<f32>(70, 50, 92);
        let mut c = Matrix::<f32>::zeros(60, 50);
        cake_sgemm(&a, &b, &mut c, &cfg);
        assert_gemm_eq(&c, &naive(&a, &b), 70);
    }

    #[test]
    fn autotuned_for_reads_the_cache_and_falls_back() {
        use crate::tune::{TuneTable, TunedEntry};
        let dir = std::env::temp_dir().join("cake-autotuned-for-test");
        let path = dir.join("cake-tune.json");
        let mut t = TuneTable::default();
        t.insert(TunedEntry {
            m: 96, k: 96, n: 96, dtype: "f32".into(), p: 2,
            mc: 24, kc: 96, nc: 96, tier: "portable".into(), gflops: 1.0,
        });
        t.save(&path).expect("save");
        std::env::set_var("CAKE_TUNE_CACHE", &path);
        let hit = CakeConfig::autotuned_for(96, 96, 96, "f32", 2);
        let miss = CakeConfig::autotuned_for(97, 96, 96, "f32", 2);
        std::env::remove_var("CAKE_TUNE_CACHE");
        assert_eq!(hit.fixed_shape, Some(CbBlockShape::fixed(2, 24, 96, 96)));
        assert_eq!(hit.kernel_tier, Some(cake_kernels::KernelTier::Portable));
        assert!(hit.selected_kernel::<f32>().name().starts_with("portable"));
        // Cache miss degrades to plain `tuned_for`.
        assert_eq!(miss.fixed_shape, None);
        assert_eq!(miss.kernel_tier, None);
        assert_eq!(miss.threads, Some(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_dimension_noop() {
        let a = Matrix::<f32>::zeros(0, 8);
        let b = Matrix::<f32>::zeros(8, 8);
        let mut c = Matrix::<f32>::zeros(0, 8);
        cake_sgemm(&a, &b, &mut c, &CakeConfig::default()); // must not panic
    }

    #[test]
    fn transposed_view_input() {
        // Compute C += A^T * B via the view API.
        let at = init::random::<f32>(20, 30, 11); // A^T stored, A = 30x20
        let b = init::random::<f32>(30, 10, 12);
        let mut c = Matrix::<f32>::zeros(20, 10);

        let av = at.view(); // 20x30 = (A^T)^T^T... we want rows=20? A^T is 20x30?
        // We want C(20x10) += X(20x30) * B(30x10) where X = at viewed as is.
        let bv = b.view();
        let mut cv = c.view_mut();
        cake_gemm_views(&av, &bv, &mut cv, &CakeConfig::with_threads(1));

        let expected = naive(&at, &b);
        assert_gemm_eq(&c, &expected, 30);

        // Now the genuinely transposed case: C2 += at^T * b2.
        let b2 = init::random::<f32>(20, 10, 13);
        let mut c2 = Matrix::<f32>::zeros(30, 10);
        let av_t = at.view().t(); // 30x20, strided
        let b2v = b2.view();
        let mut c2v = c2.view_mut();
        cake_gemm_views(&av_t, &b2v, &mut c2v, &CakeConfig::with_threads(1));
        let expected2 = naive(&at.transposed(), &b2);
        assert_gemm_eq(&c2, &expected2, 20);
    }

    #[test]
    fn gemm_op_transpose_flags() {
        use super::Op;
        let a = init::random::<f32>(20, 30, 21); // stored 20x30
        let b = init::random::<f32>(10, 30, 22); // stored 10x30
        // C (20x10) += A * B^T.
        let mut c = Matrix::<f32>::zeros(20, 10);
        cake_gemm_op(Op::NoTrans, &a, Op::Trans, &b, &mut c, &CakeConfig::with_threads(2));
        let expected = naive(&a, &b.transposed());
        assert_gemm_eq(&c, &expected, 30);

        // C2 (30x30) += A^T * ... pick A^T (30x20) * B2 (20x30).
        let b2 = init::random::<f32>(20, 30, 23);
        let mut c2 = Matrix::<f32>::zeros(30, 30);
        cake_gemm_op(Op::Trans, &a, Op::NoTrans, &b2, &mut c2, &CakeConfig::with_threads(2));
        let expected2 = naive(&a.transposed(), &b2);
        assert_gemm_eq(&c2, &expected2, 20);
    }

    #[test]
    fn gemm_scaled_blas_semantics() {
        let (m, k, n) = (17, 13, 19);
        let a = init::random::<f32>(m, k, 31);
        let b = init::random::<f32>(k, n, 32);
        let c0 = init::random::<f32>(m, n, 33);
        let cfg = CakeConfig::with_threads(1);

        // Reference: C = 2.5*A*B - 0.5*C0.
        let ab = naive(&a, &b);
        let expected = Matrix::from_fn(m, n, |i, j| 2.5 * ab.get(i, j) - 0.5 * c0.get(i, j));

        let mut c = c0.clone();
        cake_gemm_scaled(2.5f32, &a, &b, -0.5, &mut c, &cfg);
        assert_gemm_eq(&c, &expected, k);

        // beta = 0 zeroes out prior contents even with NaN-free guarantees.
        let mut c = c0.clone();
        cake_gemm_scaled(1.0f32, &a, &b, 0.0, &mut c, &cfg);
        assert_gemm_eq(&c, &ab, k);

        // alpha = 0 leaves beta*C only.
        let mut c = c0.clone();
        cake_gemm_scaled(0.0f32, &a, &b, 2.0, &mut c, &cfg);
        let doubled = Matrix::from_fn(m, n, |i, j| 2.0 * c0.get(i, j));
        assert_gemm_eq(&c, &doubled, 1);
    }
}
