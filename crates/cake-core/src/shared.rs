//! Low-level sharing primitives for block-GEMM executors.
//!
//! Both the CAKE executor and the GOTO baseline broadcast one closure to
//! all workers and coordinate through barriers; these wrappers carry the
//! shared packed buffers and the raw output pointer across that boundary
//! soundly (disjoint writes + barrier-established happens-before).

use std::cell::UnsafeCell;

use cake_matrix::AlignedBuf;

/// Shared mutable buffer written in disjoint regions by several workers,
/// with barrier-established happens-before between writes and reads.
pub struct SharedBuf<T>(UnsafeCell<AlignedBuf<T>>);

// SAFETY: callers write disjoint index ranges, and every write is separated
// from every read by a `Barrier::wait` (Release/Acquire pair).
unsafe impl<T: Send> Sync for SharedBuf<T> {}

impl<T: Copy + Default> SharedBuf<T> {
    /// Allocate a zeroed shared buffer.
    pub fn zeroed(len: usize) -> Self {
        Self(UnsafeCell::new(AlignedBuf::zeroed(len)))
    }

    /// An empty buffer (no allocation) — the starting state of a reusable
    /// workspace.
    pub fn empty() -> Self {
        Self::zeroed(0)
    }

    /// Ensure capacity for at least `len` elements, growing geometrically
    /// (at least 2x) so a sequence of growing GEMMs triggers O(log n)
    /// reallocations. Contents are **not** preserved and the new buffer is
    /// only zeroed when freshly allocated — packing routines overwrite
    /// every element they later read, including zero padding.
    ///
    /// Returns `true` when a new allocation was made. Requires `&mut self`,
    /// so no worker can hold a pointer into the old buffer across a call.
    pub fn reserve(&mut self, len: usize) -> bool {
        let cur = self.len();
        if len <= cur {
            return false;
        }
        let new_len = len.max(cur.saturating_mul(2));
        *self.0.get_mut() = AlignedBuf::zeroed(new_len);
        true
    }

    /// Raw base pointer (method access, so closures capture `&SharedBuf`
    /// rather than the inner `UnsafeCell` field — precise closure capture
    /// would otherwise bypass the `Sync` impl above).
    ///
    /// Writes through the returned pointer must target regions disjoint
    /// from every other concurrent writer and be synchronized with readers.
    pub fn base_ptr(&self) -> *mut T {
        // SAFETY: forming a shared reference to the buffer struct is fine;
        // mutation discipline is the caller's contract above.
        unsafe { (*self.0.get()).as_ptr() as *mut T }
    }

    /// Buffer length in elements.
    pub fn len(&self) -> usize {
        // SAFETY: reading the length field through a shared ref is safe;
        // the length never changes after construction.
        unsafe { (*self.0.get()).len() }
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Raw output pointer shipped to workers; each worker must write a disjoint
/// region of C.
pub struct OutPtr<T>(*mut T);

// SAFETY: OutPtr is a plain address; `new`'s contract makes every user write
// a disjoint region of C, so moving or sharing the wrapper across threads
// introduces no aliasing beyond what the constructor already licensed.
unsafe impl<T: Send> Send for OutPtr<T> {}
unsafe impl<T: Send> Sync for OutPtr<T> {}

impl<T> OutPtr<T> {
    /// Wrap a raw output pointer.
    ///
    /// # Safety
    /// The pointer must stay valid for the lifetime of all uses, and
    /// concurrent users must write disjoint regions.
    pub unsafe fn new(ptr: *mut T) -> Self {
        Self(ptr)
    }

    /// The wrapped pointer (method access for precise-capture reasons; see
    /// [`SharedBuf::base_ptr`]).
    pub fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for OutPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for OutPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn shared_buf_round_trips_across_threads() {
        let buf = SharedBuf::<f32>::zeroed(64);
        assert_eq!(buf.len(), 64);
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            for wid in 0..2usize {
                let buf = &buf;
                let barrier = &barrier;
                s.spawn(move || {
                    // Each thread writes its disjoint half.
                    let base = buf.base_ptr();
                    for i in 0..32 {
                        // SAFETY: wid*32 + i < 64 and the two halves are
                        // disjoint between the threads.
                        unsafe { *base.add(wid * 32 + i) = (wid * 100 + i) as f32 };
                    }
                    barrier.wait();
                    // SAFETY: indices < 64; the barrier orders both threads'
                    // writes before these reads.
                    unsafe {
                        assert_eq!(*base.add(0), 0.0);
                        assert_eq!(*base.add(32), 100.0);
                        assert_eq!(*base.add(63), 131.0);
                    }
                });
            }
        });
    }

    #[test]
    fn empty_buffer() {
        let buf = SharedBuf::<f64>::zeroed(0);
        assert!(buf.is_empty());
    }

    #[test]
    fn reserve_grows_geometrically_and_reports_allocations() {
        let mut buf = SharedBuf::<f32>::empty();
        assert!(buf.reserve(10));
        assert!(buf.len() >= 10);
        // Within capacity: no allocation.
        assert!(!buf.reserve(5));
        assert!(!buf.reserve(10));
        let cap = buf.len();
        // Growth is at least a doubling, so +1 over capacity jumps to 2x.
        assert!(buf.reserve(cap + 1));
        assert!(buf.len() >= 2 * cap);
    }

    #[test]
    fn out_ptr_is_copy_and_shares_address() {
        let mut x = [1.0f64; 4];
        // SAFETY: x outlives both wrappers and only one writer touches it.
        let p = unsafe { OutPtr::new(x.as_mut_ptr()) };
        let q = p;
        // SAFETY: q points at x[0], valid and unaliased here.
        unsafe { *q.get() = 7.0 };
        assert_eq!(x[0], 7.0);
        let _ = p; // still usable: Copy
    }
}
