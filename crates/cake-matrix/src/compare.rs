//! Tolerant floating-point comparison for GEMM verification.
//!
//! A GEMM result accumulates `K` products, so rounding error grows with `K`.
//! [`gemm_tolerance`] provides the standard forward-error bound scale
//! `~ K * eps`, which the integration tests use to compare optimized
//! implementations against the naive reference.

use crate::element::Element;
use crate::matrix::Matrix;

/// Maximum absolute elementwise difference between two matrices.
///
/// # Panics
/// Panics if the shapes differ.
pub fn max_abs_diff<T: Element>(a: &Matrix<T>, b: &Matrix<T>) -> f64 {
    assert_eq!(a.rows(), b.rows(), "row mismatch");
    assert_eq!(a.cols(), b.cols(), "col mismatch");
    let mut max = 0.0f64;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let d = (a.get(i, j).to_f64() - b.get(i, j).to_f64()).abs();
            if d > max {
                max = d;
            }
        }
    }
    max
}

/// Maximum relative elementwise difference, with denominators clamped to 1
/// so near-zero entries do not explode the ratio.
pub fn max_rel_diff<T: Element>(a: &Matrix<T>, b: &Matrix<T>) -> f64 {
    assert_eq!(a.rows(), b.rows(), "row mismatch");
    assert_eq!(a.cols(), b.cols(), "col mismatch");
    let mut max = 0.0f64;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let x = a.get(i, j).to_f64();
            let y = b.get(i, j).to_f64();
            let denom = x.abs().max(y.abs()).max(1.0);
            let d = (x - y).abs() / denom;
            if d > max {
                max = d;
            }
        }
    }
    max
}

/// `true` if all elements agree within `tol` (absolute or relative).
pub fn approx_eq<T: Element>(a: &Matrix<T>, b: &Matrix<T>, tol: f64) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let x = a.get(i, j).to_f64();
            let y = b.get(i, j).to_f64();
            if !x.is_finite() || !y.is_finite() {
                return false;
            }
            let denom = x.abs().max(y.abs()).max(1.0);
            if (x - y).abs() > tol * denom {
                return false;
            }
        }
    }
    true
}

/// Forward-error tolerance for comparing two GEMM results with reduction
/// depth `k`: `8 * k * eps`, floored to a small constant.
///
/// The factor 8 absorbs the difference in summation orders between blocked
/// and naive accumulation (blocked sums are usually *more* accurate).
pub fn gemm_tolerance<T: Element>(k: usize) -> f64 {
    let eps = T::epsilon().to_f64();
    (8.0 * k.max(1) as f64 * eps).max(16.0 * eps)
}

/// Assert two matrices are GEMM-equal for reduction depth `k`, with a
/// diagnostic message on failure.
///
/// # Panics
/// Panics when the comparison fails.
pub fn assert_gemm_eq<T: Element>(actual: &Matrix<T>, expected: &Matrix<T>, k: usize) {
    let tol = gemm_tolerance::<T>(k);
    if !approx_eq(actual, expected, tol) {
        let abs = max_abs_diff(actual, expected);
        let rel = max_rel_diff(actual, expected);
        panic!(
            "GEMM mismatch: shape {}x{}, K={k}, max_abs={abs:.3e}, max_rel={rel:.3e}, tol={tol:.3e}",
            actual.rows(),
            actual.cols()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn identical_matrices_compare_equal() {
        let a = init::random::<f64>(6, 7, 1);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
        assert!(approx_eq(&a, &a, 0.0));
    }

    #[test]
    fn detects_single_element_difference() {
        let a = init::random::<f32>(4, 4, 2);
        let mut b = a.clone();
        b.set(3, 3, b.get(3, 3) + 0.5);
        assert!((max_abs_diff(&a, &b) - 0.5).abs() < 1e-6);
        assert!(!approx_eq(&a, &b, 1e-3));
    }

    #[test]
    fn rel_diff_clamps_small_denominators() {
        let a = Matrix::<f64>::from_fn(1, 1, |_, _| 0.0);
        let b = Matrix::<f64>::from_fn(1, 1, |_, _| 1e-12);
        // denominator clamped to 1.0, so rel diff equals abs diff here.
        assert!(max_rel_diff(&a, &b) < 1e-11);
    }

    #[test]
    fn shape_mismatch_is_not_equal() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(3, 2);
        assert!(!approx_eq(&a, &b, 1.0));
    }

    #[test]
    fn nan_is_never_equal() {
        let a = Matrix::<f32>::from_fn(1, 1, |_, _| f32::NAN);
        assert!(!approx_eq(&a, &a, 1.0));
    }

    #[test]
    fn tolerance_scales_with_k() {
        assert!(gemm_tolerance::<f32>(1000) > gemm_tolerance::<f32>(10));
        assert!(gemm_tolerance::<f64>(100) < gemm_tolerance::<f32>(100));
        assert!(gemm_tolerance::<f32>(0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "GEMM mismatch")]
    fn assert_gemm_eq_panics_with_diagnostics() {
        let a = Matrix::<f64>::zeros(2, 2);
        let mut b = Matrix::<f64>::zeros(2, 2);
        b.set(0, 0, 1.0);
        assert_gemm_eq(&a, &b, 4);
    }
}
