//! Dimension partitioning helpers shared by the CAKE and GOTO schedulers.
//!
//! Both algorithms carve each of the `M`, `K`, `N` dimensions into blocks of
//! a target size, with a (possibly smaller) remainder block at the end. The
//! paper's block grid (`Mb x Kb x Nb`, Algorithm 2) is built from these
//! ranges.

/// A half-open range `[start, start + len)` of one matrix dimension,
/// together with its block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRange {
    /// Index of this block within its dimension.
    pub idx: usize,
    /// First element covered.
    pub start: usize,
    /// Number of elements covered (equal to the block size except possibly
    /// for the final remainder block).
    pub len: usize,
}

impl BlockRange {
    /// One-past-the-end element.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Number of blocks needed to cover `dim` with blocks of `block` elements.
///
/// Zero-sized dimensions need zero blocks. A zero block size is a caller bug.
///
/// # Panics
/// Panics if `block == 0` while `dim > 0`.
pub fn block_count(dim: usize, block: usize) -> usize {
    if dim == 0 {
        return 0;
    }
    // audit: cold grid-construction precondition, once per GEMM call
    assert!(block > 0, "block size must be positive for non-empty dim");
    dim.div_ceil(block)
}

/// The ranges covering `dim` in blocks of `block` elements.
pub fn block_ranges(dim: usize, block: usize) -> Vec<BlockRange> {
    let count = block_count(dim, block);
    (0..count)
        .map(|idx| {
            let start = idx * block;
            BlockRange {
                idx,
                start,
                len: block.min(dim - start),
            }
        })
        .collect()
}

/// Split `dim` as evenly as possible into exactly `parts` contiguous ranges
/// (used to assign `C`-row strips to cores).
///
/// The first `dim % parts` ranges get one extra element. Ranges may be empty
/// when `parts > dim`.
pub fn even_split(dim: usize, parts: usize) -> Vec<BlockRange> {
    assert!(parts > 0, "cannot split into zero parts");
    let base = dim / parts;
    let extra = dim % parts;
    let mut start = 0;
    (0..parts)
        .map(|idx| {
            let len = base + usize::from(idx < extra);
            let r = BlockRange { idx, start, len };
            start += len;
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_division() {
        let r = block_ranges(12, 4);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], BlockRange { idx: 0, start: 0, len: 4 });
        assert_eq!(r[2], BlockRange { idx: 2, start: 8, len: 4 });
    }

    #[test]
    fn remainder_block_is_short() {
        let r = block_ranges(10, 4);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2].len, 2);
        assert_eq!(r[2].end(), 10);
    }

    #[test]
    fn zero_dim_has_no_blocks() {
        assert_eq!(block_count(0, 4), 0);
        assert!(block_ranges(0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        let _ = block_count(5, 0);
    }

    #[test]
    fn even_split_distributes_remainder_first() {
        let r = even_split(10, 4);
        let lens: Vec<usize> = r.iter().map(|b| b.len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        assert_eq!(r.last().unwrap().end(), 10);
    }

    #[test]
    fn even_split_more_parts_than_elements() {
        let r = even_split(2, 5);
        let lens: Vec<usize> = r.iter().map(|b| b.len).collect();
        assert_eq!(lens, vec![1, 1, 0, 0, 0]);
    }

    proptest! {
        #[test]
        fn ranges_tile_dimension_exactly(dim in 0usize..5000, block in 1usize..512) {
            let ranges = block_ranges(dim, block);
            // Contiguous, ordered, covering.
            let mut pos = 0;
            for (i, r) in ranges.iter().enumerate() {
                prop_assert_eq!(r.idx, i);
                prop_assert_eq!(r.start, pos);
                prop_assert!(r.len > 0);
                prop_assert!(r.len <= block);
                pos = r.end();
            }
            prop_assert_eq!(pos, dim);
        }

        #[test]
        fn even_split_covers_and_balances(dim in 0usize..5000, parts in 1usize..64) {
            let ranges = even_split(dim, parts);
            prop_assert_eq!(ranges.len(), parts);
            let total: usize = ranges.iter().map(|r| r.len).sum();
            prop_assert_eq!(total, dim);
            let max = ranges.iter().map(|r| r.len).max().unwrap();
            let min = ranges.iter().map(|r| r.len).min().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
