//! Cache-line-aligned heap buffers.
//!
//! Packed GEMM panels must start on (at least) 32-byte boundaries for aligned
//! AVX loads, and aligning to the 64-byte cache line additionally avoids
//! split-line accesses and false sharing between the per-core panels the CAKE
//! executor hands to worker threads.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout as AllocLayout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment used for every matrix/panel allocation in the workspace.
pub const CACHE_LINE: usize = 64;

/// A fixed-capacity, 64-byte-aligned, zero-initialized buffer of `T`.
///
/// Semantically a `Box<[T]>` with guaranteed alignment. Zero-length buffers
/// perform no allocation.
pub struct AlignedBuf<T> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: `AlignedBuf` uniquely owns its allocation, exactly like `Box<[T]>`.
unsafe impl<T: Send> Send for AlignedBuf<T> {}
unsafe impl<T: Sync> Sync for AlignedBuf<T> {}

impl<T: Copy + Default> AlignedBuf<T> {
    /// Allocate a zeroed buffer of `len` elements aligned to [`CACHE_LINE`].
    ///
    /// # Panics
    /// Panics if the byte size overflows `isize` (the allocation layout is
    /// invalid) — consistent with `Vec` behaviour.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, T is not a ZST by
        // construction of the callers, but guard anyway below).
        assert!(layout.size() > 0, "zero-sized element types are unsupported");
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        Self { ptr, len }
    }

    fn layout(len: usize) -> AllocLayout {
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("allocation size overflow");
        AllocLayout::from_size_align(bytes, CACHE_LINE.max(std::mem::align_of::<T>()))
            .expect("invalid allocation layout")
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw constant pointer to the first element.
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// Raw mutable pointer to the first element.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            let bytes = self.len * std::mem::size_of::<T>();
            let layout =
                AllocLayout::from_size_align(bytes, CACHE_LINE.max(std::mem::align_of::<T>()))
                    // audit: cold deallocation path, runs at buffer teardown not in the K loop
                    .expect("layout was validated at allocation time");
            // SAFETY: ptr was allocated with exactly this layout in `zeroed`.
            unsafe { dealloc(self.ptr.as_ptr().cast(), layout) };
        }
    }
}

impl<T> Deref for AlignedBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: ptr/len describe a live, initialized allocation.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> DerefMut for AlignedBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: ptr/len describe a live, initialized allocation we own.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy + Default> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        let mut out = Self::zeroed(self.len);
        out.copy_from_slice(self);
        out
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .field("data", &&self[..self.len.min(8)])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let buf = AlignedBuf::<f32>::zeroed(1000);
        assert_eq!(buf.len(), 1000);
        assert!(buf.iter().all(|&x| x == 0.0));
        assert_eq!(buf.as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn zero_len_allocates_nothing_and_derefs_empty() {
        let buf = AlignedBuf::<f64>::zeroed(0);
        assert!(buf.is_empty());
        assert_eq!(&buf[..], &[] as &[f64]);
    }

    #[test]
    fn writes_persist_and_clone_copies() {
        let mut buf = AlignedBuf::<f64>::zeroed(17);
        for (i, x) in buf.iter_mut().enumerate() {
            *x = i as f64;
        }
        let cloned = buf.clone();
        assert_eq!(&cloned[..], &buf[..]);
        assert_eq!(cloned[16], 16.0);
        // Clone is a distinct allocation.
        assert_ne!(cloned.as_ptr(), buf.as_ptr());
    }

    #[test]
    fn alignment_holds_for_many_sizes() {
        for len in [1usize, 2, 3, 15, 16, 17, 63, 64, 65, 4096] {
            let buf = AlignedBuf::<f32>::zeroed(len);
            assert_eq!(buf.as_ptr() as usize % CACHE_LINE, 0, "len={len}");
        }
    }
}
