//! Scalar element trait shared by every GEMM implementation in the workspace.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Scalar type usable as a GEMM element.
///
/// The trait deliberately stays small: the microkernels only need
/// multiply-accumulate, and the test harness needs conversions and an
/// absolute value for tolerance checks. It is sealed to the workspace's
/// supported scalars: `f32`/`f64` (the paper evaluates single precision;
/// double is the natural extension), plus the narrow-dtype tier — `i8`
/// operands, `i32` accumulators, and [`Bf16`] operands. Integer types
/// report `epsilon() == 0`, which makes every tolerance formula collapse
/// to exact equality.
pub trait Element:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + Default
    + PartialOrd
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Sum
    + private::Sealed
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of the element in bytes (compile-time constant convenience).
    const BYTES: usize = std::mem::size_of::<Self>();

    /// Fused (or at least contracted) multiply-add: `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Lossy conversion from `f64` (used by initializers and tolerances).
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64` (used by comparisons and reductions).
    fn to_f64(self) -> f64;
    /// Machine epsilon of the type.
    fn epsilon() -> Self;
    /// `true` if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
}

/// Element/accumulator pairing for mixed-precision GEMM.
///
/// A microkernel reads `Self` operands (A and B panels) and accumulates
/// into [`Dtype::Acc`] (the C tile). For the classic paths the pair is
/// trivial (`f32 -> f32`, `f64 -> f64`); the narrow-dtype tier widens
/// (`i8 -> i32` so K-long dot products cannot overflow, `Bf16 -> f32`
/// following the AVX-512 BF16 dot-product semantics). The executor, the
/// packing layer, and the references are generic over this pair: A/B
/// buffers hold `Self`, everything C-side holds `Acc`.
pub trait Dtype: Element {
    /// Accumulator scalar for this operand type.
    type Acc: Element;
    /// Dtype name surfaced by cakectl, benches, and stats lines.
    const NAME: &'static str;
    /// Widen one operand into the accumulator domain (exact for every
    /// supported pair: i8 fits i32, bf16 fits f32).
    fn widen(self) -> Self::Acc;
}

impl Dtype for f32 {
    type Acc = f32;
    const NAME: &'static str = "f32";
    #[inline(always)]
    fn widen(self) -> f32 {
        self
    }
}

impl Dtype for f64 {
    type Acc = f64;
    const NAME: &'static str = "f64";
    #[inline(always)]
    fn widen(self) -> f64 {
        self
    }
}

impl Dtype for i8 {
    type Acc = i32;
    const NAME: &'static str = "int8";
    #[inline(always)]
    fn widen(self) -> i32 {
        self as i32
    }
}

impl Dtype for Bf16 {
    type Acc = f32;
    const NAME: &'static str = "bf16";
    #[inline(always)]
    fn widen(self) -> f32 {
        self.to_f32()
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for i8 {}
    impl Sealed for i32 {}
    impl Sealed for super::Bf16 {}
}

macro_rules! impl_element {
    ($t:ty) => {
        impl Element for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // `mul_add` maps to an FMA instruction when the target has
                // one; the microkernels rely on this for peak throughput.
                <$t>::mul_add(self, a, b)
            }

            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }

            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_element!(f32);
impl_element!(f64);

/// Integer elements: wrapping arithmetic in `mul_add` (two's-complement
/// GEMM would wrap anyway; the i8 operand range is kept small enough by
/// the initializers/quantizers that i32 accumulators never overflow in
/// practice), `epsilon() == 0` so tolerance checks demand exactness, and
/// every value is "finite".
macro_rules! impl_element_int {
    ($t:ty) => {
        impl Element for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;

            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.wrapping_mul(a).wrapping_add(b)
            }

            #[inline(always)]
            fn abs(self) -> Self {
                self.wrapping_abs()
            }

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline(always)]
            fn epsilon() -> Self {
                0
            }

            #[inline(always)]
            fn is_finite(self) -> bool {
                true
            }
        }
    };
}

impl_element_int!(i8);
impl_element_int!(i32);

/// Brain floating point: 1 sign, 8 exponent, 7 mantissa bits — the high
/// half of an `f32`. Stored as raw bits; all arithmetic round-trips
/// through `f32` (exact: every bf16 value is exactly representable in
/// f32), with round-to-nearest-even on the way back. This matches the
/// AVX-512 BF16 `VCVTNEPS2BF16` conversion, so the portable path and the
/// vectorized kernels agree bit-for-bit on conversions.
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct Bf16(u16);

impl Bf16 {
    /// Raw bit pattern.
    #[inline(always)]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Value from a raw bit pattern.
    #[inline(always)]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Round-to-nearest-even conversion from `f32` (NaN stays NaN,
    /// quieted; matches `VCVTNEPS2BF16`).
    #[inline(always)]
    pub fn from_f32(v: f32) -> Self {
        let bits = v.to_bits();
        if v.is_nan() {
            // Truncate but force a mantissa bit so the result stays NaN.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Add 0x7FFF + (lsb of the kept mantissa) before truncating: ties
        // round to the even (lsb = 0) candidate.
        let lsb = (bits >> 16) & 1;
        Bf16((bits.wrapping_add(0x7FFF + lsb) >> 16) as u16)
    }

    /// Exact widening to `f32` (append 16 zero mantissa bits).
    #[inline(always)]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }
}

impl Debug for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}bf16", self.to_f32())
    }
}

impl Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Display::fmt(&self.to_f32(), f)
    }
}

impl PartialEq for Bf16 {
    #[inline(always)]
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for Bf16 {
    #[inline(always)]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! impl_bf16_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Bf16 {
            type Output = Bf16;
            #[inline(always)]
            fn $method(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f32(self.to_f32().$method(rhs.to_f32()))
            }
        }
    };
}

impl_bf16_binop!(Add, add);
impl_bf16_binop!(Sub, sub);
impl_bf16_binop!(Mul, mul);
impl_bf16_binop!(Div, div);

impl AddAssign for Bf16 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Bf16) {
        *self = *self + rhs;
    }
}

impl Neg for Bf16 {
    type Output = Bf16;
    #[inline(always)]
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl Sum for Bf16 {
    fn sum<I: Iterator<Item = Bf16>>(iter: I) -> Bf16 {
        iter.fold(Bf16::ZERO, |a, b| a + b)
    }
}

impl Element for Bf16 {
    const ZERO: Self = Bf16(0x0000);
    const ONE: Self = Bf16(0x3F80);

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Bf16::from_f32(self.to_f32().mul_add(a.to_f32(), b.to_f32()))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        Bf16(self.0 & 0x7FFF)
    }

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        Bf16::from_f32(v as f32)
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    #[inline(always)]
    fn epsilon() -> Self {
        // 2^-7: one ulp of the 7-bit mantissa at 1.0.
        Bf16(0x3C00)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        self.to_f32().is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_literals() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f32::ONE, 1.0f32);
        assert_eq!(f64::ZERO, 0.0f64);
        assert_eq!(f64::ONE, 1.0f64);
        assert_eq!(<f32 as Element>::BYTES, 4);
        assert_eq!(<f64 as Element>::BYTES, 8);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let r = Element::mul_add(2.0f64, 3.0, 4.0);
        assert_eq!(r, 10.0);
        let r32 = Element::mul_add(2.0f32, 3.0, 4.0);
        assert_eq!(r32, 10.0);
    }

    #[test]
    fn conversions_round_trip_small_integers() {
        for i in -100..100 {
            let v = i as f64;
            assert_eq!(<f32 as Element>::from_f64(v).to_f64(), v);
            assert_eq!(<f64 as Element>::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn finiteness() {
        assert!(1.0f32.is_finite());
        assert!(!Element::is_finite(f32::NAN));
        assert!(!Element::is_finite(f64::INFINITY));
    }

    #[test]
    fn integer_elements_are_exact() {
        assert_eq!(<i8 as Element>::BYTES, 1);
        assert_eq!(<i32 as Element>::BYTES, 4);
        assert_eq!(i8::ZERO, 0);
        assert_eq!(i32::ONE, 1);
        assert_eq!(Element::mul_add(3i32, 4, 5), 17);
        assert_eq!(Element::mul_add(-2i8, 3, 1), -5);
        assert_eq!(<i8 as Element>::epsilon(), 0);
        assert_eq!(Element::abs(-7i32), 7);
        assert!(Element::is_finite(i32::MAX));
        // from_f64 saturates rather than wrapping (Rust `as` semantics).
        assert_eq!(<i8 as Element>::from_f64(1000.0), 127);
        assert_eq!(<i8 as Element>::from_f64(-1000.0), -128);
    }

    #[test]
    fn bf16_round_trips_exactly_representable_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, -0.5, 2.0, 96.0, -0.0078125] {
            let b = Bf16::from_f32(v);
            assert_eq!(b.to_f32(), v, "{v}");
        }
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(<Bf16 as Element>::epsilon().to_f32(), 0.0078125);
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and 1.0 + 2^-7:
        // ties-to-even keeps 1.0 (even mantissa lsb).
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(halfway).to_bits(), 0x3F80);
        // The next halfway point (odd lsb) rounds up.
        let halfway_odd = f32::from_bits(0x3F81_8000);
        assert_eq!(Bf16::from_f32(halfway_odd).to_bits(), 0x3F82);
        // Anything past halfway rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above).to_bits(), 0x3F81);
    }

    #[test]
    fn bf16_special_values() {
        assert!(!Element::is_finite(Bf16::from_f32(f32::NAN)));
        assert!(Bf16::from_f32(f32::NAN).to_f32().is_nan());
        assert!(!Element::is_finite(Bf16::from_f32(f32::INFINITY)));
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        // Large finite f32 rounds up to bf16 infinity.
        assert_eq!(Bf16::from_f32(f32::MAX).to_f32(), f32::INFINITY);
        assert_eq!((-Bf16::ONE).to_f32(), -1.0);
        assert_eq!(Element::abs(-Bf16::ONE), Bf16::ONE);
    }

    #[test]
    fn bf16_arithmetic_via_f32() {
        let a = Bf16::from_f32(1.5);
        let b = Bf16::from_f32(2.0);
        assert_eq!((a + b).to_f32(), 3.5);
        assert_eq!((a * b).to_f32(), 3.0);
        assert_eq!((a - b).to_f32(), -0.5);
        assert_eq!((a / b).to_f32(), 0.75);
        assert_eq!(Element::mul_add(a, b, Bf16::ONE).to_f32(), 4.0);
        let s: Bf16 = [a, b, Bf16::ONE].into_iter().sum();
        assert_eq!(s.to_f32(), 4.5);
    }

    #[test]
    fn dtype_pairs_widen_exactly() {
        assert_eq!(<f32 as Dtype>::NAME, "f32");
        assert_eq!(<f64 as Dtype>::NAME, "f64");
        assert_eq!(<i8 as Dtype>::NAME, "int8");
        assert_eq!(<Bf16 as Dtype>::NAME, "bf16");
        assert_eq!(Dtype::widen(-128i8), -128i32);
        assert_eq!(Dtype::widen(127i8), 127i32);
        assert_eq!(Dtype::widen(1.25f32), 1.25f32);
        assert_eq!(Dtype::widen(Bf16::from_f32(-0.5)), -0.5f32);
        // Every bf16 widens exactly: round-tripping through Acc is lossless.
        for bits in (0..=u16::MAX).step_by(7) {
            let b = Bf16::from_bits(bits);
            if Element::is_finite(b) {
                assert_eq!(Bf16::from_f32(Dtype::widen(b)).to_bits(), bits);
            }
        }
    }
}
