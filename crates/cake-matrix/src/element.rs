//! Scalar element trait shared by every GEMM implementation in the workspace.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Scalar type usable as a GEMM element.
///
/// The trait deliberately stays small: the microkernels only need
/// multiply-accumulate, and the test harness needs conversions and an
/// absolute value for tolerance checks. It is sealed to `f32`/`f64` — the
/// paper evaluates single precision (BLIS sgemm kernels) and we add double
/// precision as the natural extension.
pub trait Element:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + Default
    + PartialOrd
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Sum
    + private::Sealed
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of the element in bytes (compile-time constant convenience).
    const BYTES: usize = std::mem::size_of::<Self>();

    /// Fused (or at least contracted) multiply-add: `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Lossy conversion from `f64` (used by initializers and tolerances).
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64` (used by comparisons and reductions).
    fn to_f64(self) -> f64;
    /// Machine epsilon of the type.
    fn epsilon() -> Self;
    /// `true` if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

macro_rules! impl_element {
    ($t:ty) => {
        impl Element for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // `mul_add` maps to an FMA instruction when the target has
                // one; the microkernels rely on this for peak throughput.
                <$t>::mul_add(self, a, b)
            }

            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }

            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_element!(f32);
impl_element!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_literals() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f32::ONE, 1.0f32);
        assert_eq!(f64::ZERO, 0.0f64);
        assert_eq!(f64::ONE, 1.0f64);
        assert_eq!(<f32 as Element>::BYTES, 4);
        assert_eq!(<f64 as Element>::BYTES, 8);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let r = Element::mul_add(2.0f64, 3.0, 4.0);
        assert_eq!(r, 10.0);
        let r32 = Element::mul_add(2.0f32, 3.0, 4.0);
        assert_eq!(r32, 10.0);
    }

    #[test]
    fn conversions_round_trip_small_integers() {
        for i in -100..100 {
            let v = i as f64;
            assert_eq!(<f32 as Element>::from_f64(v).to_f64(), v);
            assert_eq!(<f64 as Element>::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn finiteness() {
        assert!(1.0f32.is_finite());
        assert!(!Element::is_finite(f32::NAN));
        assert!(!Element::is_finite(f64::INFINITY));
    }
}
