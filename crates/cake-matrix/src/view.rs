//! Borrowed strided sub-matrix views.
//!
//! Views are the currency between the schedulers, packing routines, and
//! microkernels: a scheduler selects a block of the computation space, takes
//! a view of the corresponding operand region, and hands it to a packer.
//!
//! A view is always *logically row-major*: `(i, j)` maps to
//! `i * row_stride + j * col_stride`. A column-major matrix is simply a view
//! with `col_stride > 1` and `row_stride == 1`, so transposition is free.

use crate::element::Element;

/// Immutable strided view over a region of a matrix.
#[derive(Clone, Copy)]
pub struct MatrixView<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
}

/// Mutable strided view over a region of a matrix.
pub struct MatrixViewMut<'a, T> {
    data: &'a mut [T],
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
}

fn check_bounds(
    len: usize,
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
) {
    if rows == 0 || cols == 0 {
        return;
    }
    let max = (rows - 1) * row_stride + (cols - 1) * col_stride;
    assert!(
        max < len,
        "view out of bounds: max offset {max} >= slice len {len} \
         (rows={rows}, cols={cols}, rs={row_stride}, cs={col_stride})"
    );
}

impl<'a, T: Element> MatrixView<'a, T> {
    /// Create a view over `data` with explicit strides.
    ///
    /// # Panics
    /// Panics if the addressed region does not fit inside `data`.
    pub fn new(
        data: &'a [T],
        rows: usize,
        cols: usize,
        row_stride: usize,
        col_stride: usize,
    ) -> Self {
        check_bounds(data.len(), rows, cols, row_stride, col_stride);
        Self {
            data,
            rows,
            cols,
            row_stride,
            col_stride,
        }
    }

    /// A contiguous row-major view (`col_stride == 1`).
    pub fn row_major(data: &'a [T], rows: usize, cols: usize, ld: usize) -> Self {
        Self::new(data, rows, cols, ld, 1)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between vertically adjacent elements.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Distance in elements between horizontally adjacent elements.
    #[inline]
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// Element at `(i, j)`, bounds-checked.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        // audit: checked extent contract; pack-loop callers index within the view by construction
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        // audit: checked dominated by the extent assert above
        self.data[i * self.row_stride + j * self.col_stride]
    }

    /// Element at `(i, j)` without bounds checks.
    ///
    /// # Safety
    /// `i < rows` and `j < cols` must hold.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: i < rows and j < cols (caller contract), and the view
        // constructor checked that (rows-1)*rs + (cols-1)*cs < data.len().
        unsafe {
            *self
                .data
                .get_unchecked(i * self.row_stride + j * self.col_stride)
        }
    }

    /// Sub-view of `nrows x ncols` starting at `(i0, j0)`.
    pub fn sub(&self, i0: usize, j0: usize, nrows: usize, ncols: usize) -> MatrixView<'a, T> {
        // audit: checked sub-views are tile ranges clipped to the extents by the scheduler
        assert!(i0 + nrows <= self.rows, "row range out of bounds");
        // audit: checked sub-views are tile ranges clipped to the extents by the scheduler
        assert!(j0 + ncols <= self.cols, "col range out of bounds");
        let offset = i0 * self.row_stride + j0 * self.col_stride;
        MatrixView {
            // audit: checked start clamped to data.len(); extents validated by the asserts above
            data: &self.data[offset.min(self.data.len())..],
            rows: nrows,
            cols: ncols,
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }

    /// A contiguous slice of row `i` starting at column `j0`, when the
    /// view has unit column stride (the common row-major fast path used by
    /// the packing loops). `None` for strided columns.
    pub fn contiguous_row(&self, i: usize, j0: usize, len: usize) -> Option<&'a [T]> {
        if self.col_stride != 1 {
            return None;
        }
        // audit: checked pack callers request rows inside the view by construction
        assert!(i < self.rows && j0 + len <= self.cols, "row slice out of bounds");
        let start = i * self.row_stride + j0;
        // audit: checked within the constructor-validated max offset (col stride 1)
        Some(&self.data[start..start + len])
    }

    /// A contiguous slice of column `j` starting at row `i0`, when the
    /// view has unit row stride (a column-major source — the packed-A fast
    /// path, symmetric to [`Self::contiguous_row`]). `None` for strided
    /// rows.
    pub fn contiguous_col(&self, j: usize, i0: usize, len: usize) -> Option<&'a [T]> {
        if self.row_stride != 1 {
            return None;
        }
        // audit: checked pack callers request columns inside the view by construction
        assert!(j < self.cols && i0 + len <= self.rows, "col slice out of bounds");
        let start = j * self.col_stride + i0;
        // audit: checked within the constructor-validated max offset (row stride 1)
        Some(&self.data[start..start + len])
    }

    /// The transposed view (free: swaps dims and strides).
    pub fn t(&self) -> MatrixView<'a, T> {
        MatrixView {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            row_stride: self.col_stride,
            col_stride: self.row_stride,
        }
    }

    /// Copy the view into a fresh row-major `Vec` (test/debug helper).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.push(self.get(i, j));
            }
        }
        out
    }
}

impl<'a, T: Element> MatrixViewMut<'a, T> {
    /// Create a mutable view over `data` with explicit strides.
    ///
    /// # Panics
    /// Panics if the addressed region does not fit inside `data`, or if the
    /// strides could alias distinct logical elements (either stride zero with
    /// a dimension > 1).
    pub fn new(
        data: &'a mut [T],
        rows: usize,
        cols: usize,
        row_stride: usize,
        col_stride: usize,
    ) -> Self {
        check_bounds(data.len(), rows, cols, row_stride, col_stride);
        // An empty view addresses no elements; aliasing is only possible
        // when both dimensions are populated.
        if rows > 0 && cols > 0 {
            assert!(
                (row_stride > 0 || rows <= 1) && (col_stride > 0 || cols <= 1),
                "mutable views must not alias (zero stride with dim > 1)"
            );
        }
        Self {
            data,
            rows,
            cols,
            row_stride,
            col_stride,
        }
    }

    /// A contiguous row-major mutable view.
    pub fn row_major(data: &'a mut [T], rows: usize, cols: usize, ld: usize) -> Self {
        Self::new(data, rows, cols, ld, 1)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between vertically adjacent elements.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Distance in elements between horizontally adjacent elements.
    #[inline]
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// Element at `(i, j)`, bounds-checked.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        // audit: checked extent contract; tile writers index within the view by construction
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        // audit: checked dominated by the extent assert above
        self.data[i * self.row_stride + j * self.col_stride]
    }

    /// Set element at `(i, j)`, bounds-checked.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        // audit: checked extent contract; tile writers index within the view by construction
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        // audit: checked dominated by the extent assert above
        self.data[i * self.row_stride + j * self.col_stride] = v;
    }

    /// Accumulate `v` into element `(i, j)`.
    #[inline]
    pub fn add_assign(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.row_stride + j * self.col_stride] += v;
    }

    /// Raw mutable pointer to element `(i, j)`.
    ///
    /// Used by the kernels to write `mr x nr` tiles directly.
    #[inline]
    pub fn ptr_at_mut(&mut self, i: usize, j: usize) -> *mut T {
        // audit: checked extent contract; kernels take tile corners within the view
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        // SAFETY: the view constructor checked that the largest reachable
        // offset (rows-1)*rs + (cols-1)*cs is within data, and (i, j) was
        // just asserted in range.
        unsafe {
            self.data
                .as_mut_ptr()
                .add(i * self.row_stride + j * self.col_stride)
        }
    }

    /// Immutable snapshot of this view.
    pub fn as_view(&self) -> MatrixView<'_, T> {
        MatrixView {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }

    /// Reborrow a mutable sub-view of `nrows x ncols` at `(i0, j0)`.
    pub fn sub_mut(
        &mut self,
        i0: usize,
        j0: usize,
        nrows: usize,
        ncols: usize,
    ) -> MatrixViewMut<'_, T> {
        assert!(i0 + nrows <= self.rows, "row range out of bounds");
        assert!(j0 + ncols <= self.cols, "col range out of bounds");
        let offset = i0 * self.row_stride + j0 * self.col_stride;
        // `offset` can only reach `data.len()` for an empty sub-view; clamp so
        // the slice below never panics in that degenerate case.
        let offset = offset.min(self.data.len());
        MatrixViewMut {
            data: &mut self.data[offset..],
            rows: nrows,
            cols: ncols,
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }

    /// Fill the viewed region with a value.
    pub fn fill(&mut self, v: T) {
        for i in 0..self.rows {
            for j in 0..self.cols {
                self.set(i, j, v);
            }
        }
    }
}

impl<T: Element> std::fmt::Debug for MatrixView<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MatrixView {}x{} (rs={}, cs={})",
            self.rows, self.cols, self.row_stride, self.col_stride
        )
    }
}

impl<T: Element> std::fmt::Debug for MatrixViewMut<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MatrixViewMut {}x{} (rs={}, cs={})",
            self.rows, self.cols, self.row_stride, self.col_stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn row_major_view_indexes_correctly() {
        let data = seq(12);
        let v = MatrixView::row_major(&data, 3, 4, 4);
        assert_eq!(v.get(0, 0), 0.0);
        assert_eq!(v.get(1, 2), 6.0);
        assert_eq!(v.get(2, 3), 11.0);
    }

    #[test]
    fn contiguous_col_mirrors_contiguous_row_on_transpose() {
        let data = seq(12);
        let v = MatrixView::row_major(&data, 3, 4, 4);
        // Row-major: rows are contiguous, columns are not.
        assert_eq!(v.contiguous_row(1, 1, 3), Some(&data[5..8]));
        assert_eq!(v.contiguous_col(1, 0, 3), None);
        // The transpose flips which axis is contiguous.
        let t = v.t();
        assert_eq!(t.contiguous_row(0, 0, 2), None);
        assert_eq!(t.contiguous_col(1, 1, 3), Some(&data[5..8]));
    }

    #[test]
    fn transpose_swaps_indices() {
        let data = seq(12);
        let v = MatrixView::row_major(&data, 3, 4, 4);
        let t = v.t();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(v.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn sub_view_offsets() {
        let data = seq(20);
        let v = MatrixView::row_major(&data, 4, 5, 5);
        let s = v.sub(1, 2, 2, 3);
        assert_eq!(s.get(0, 0), 7.0);
        assert_eq!(s.get(1, 2), 14.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_rejects_oversized_region() {
        let data = seq(10);
        let _ = MatrixView::row_major(&data, 3, 4, 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_rejects_out_of_range() {
        let data = seq(12);
        let v = MatrixView::row_major(&data, 3, 4, 4);
        let _ = v.get(3, 0);
    }

    #[test]
    fn mutable_view_writes_through() {
        let mut data = seq(12);
        {
            let mut v = MatrixViewMut::row_major(&mut data, 3, 4, 4);
            v.set(1, 1, 99.0);
            v.add_assign(1, 1, 1.0);
        }
        assert_eq!(data[5], 100.0);
    }

    #[test]
    #[should_panic(expected = "alias")]
    fn mutable_view_rejects_zero_stride() {
        let mut data = seq(12);
        let _ = MatrixViewMut::new(&mut data, 3, 4, 0, 1);
    }

    #[test]
    fn fill_covers_only_view_region() {
        let mut data = vec![0.0f64; 25];
        {
            let mut v = MatrixViewMut::row_major(&mut data, 5, 5, 5);
            let mut s = v.sub_mut(1, 1, 3, 3);
            s.fill(7.0);
        }
        let filled = data.iter().filter(|&&x| x == 7.0).count();
        assert_eq!(filled, 9);
        assert_eq!(data[0], 0.0);
        assert_eq!(data[6], 7.0);
    }

    #[test]
    fn zero_dim_views_are_legal() {
        let data: Vec<f32> = vec![];
        let v = MatrixView::row_major(&data, 0, 0, 0);
        assert_eq!(v.rows(), 0);
        assert_eq!(v.to_vec(), Vec::<f32>::new());
    }

    #[test]
    fn col_major_as_strided_view() {
        // 3x2 column-major data: columns [0,1,2], [3,4,5].
        let data = seq(6);
        let v = MatrixView::new(&data, 3, 2, 1, 3);
        assert_eq!(v.get(0, 0), 0.0);
        assert_eq!(v.get(1, 0), 1.0);
        assert_eq!(v.get(0, 1), 3.0);
        assert_eq!(v.get(2, 1), 5.0);
    }
}
