//! Dense matrix substrate for the CAKE GEMM reproduction.
//!
//! This crate provides the storage and view types every other crate in the
//! workspace builds on:
//!
//! * [`Element`] — the scalar trait (implemented for `f32`, `f64`, `i8`,
//!   `i32` and [`Bf16`]) that the microkernels, schedulers and simulator
//!   are generic over, plus [`Dtype`] pairing each operand type with its
//!   accumulator (`i8 -> i32`, `Bf16 -> f32`).
//! * [`AlignedBuf`] — a 64-byte-aligned heap buffer so packed panels start on
//!   cache-line (and AVX) boundaries.
//! * [`Matrix`] — an owned dense matrix with explicit [`Layout`] and stride.
//! * [`MatrixView`] / [`MatrixViewMut`] — borrowed strided sub-matrix views,
//!   the currency passed between packing routines and kernels.
//! * [`partition`] — helpers for carving a dimension into blocks, used by both
//!   the CAKE and GOTO schedulers.
//! * [`compare`] — tolerant floating-point comparison utilities for tests and
//!   the verification harness.
//!
//! The design keeps all `unsafe` confined to [`alloc`] and the raw-pointer
//! view accessors; everything above it is safe code.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod compare;
pub mod element;
pub mod init;
pub mod layout;
pub mod matrix;
pub mod partition;
pub mod view;

pub use alloc::AlignedBuf;
pub use compare::{approx_eq, max_abs_diff, max_rel_diff};
pub use element::{Bf16, Dtype, Element};
pub use layout::Layout;
pub use matrix::Matrix;
pub use partition::{block_count, block_ranges, BlockRange};
pub use view::{MatrixView, MatrixViewMut};
