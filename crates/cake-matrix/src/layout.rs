//! Memory layout of dense matrices.

/// Storage order of a dense matrix.
///
/// The GEMM entry points accept either order for each operand (mirroring the
/// BLAS `trans` flags); internally everything is packed into the
/// kernel-specific panel formats, so layout only affects the packing loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Row-major ("C order"): element `(i, j)` lives at `i * stride + j`.
    #[default]
    RowMajor,
    /// Column-major ("Fortran order"): element `(i, j)` lives at
    /// `j * stride + i`.
    ColMajor,
}

impl Layout {
    /// The opposite ordering.
    #[inline]
    pub fn transposed(self) -> Layout {
        match self {
            Layout::RowMajor => Layout::ColMajor,
            Layout::ColMajor => Layout::RowMajor,
        }
    }

    /// Linear offset of `(i, j)` in a matrix with leading dimension `ld`.
    #[inline]
    pub fn offset(self, i: usize, j: usize, ld: usize) -> usize {
        match self {
            Layout::RowMajor => i * ld + j,
            Layout::ColMajor => j * ld + i,
        }
    }

    /// Minimum leading dimension for a `rows x cols` matrix.
    #[inline]
    pub fn min_ld(self, rows: usize, cols: usize) -> usize {
        match self {
            Layout::RowMajor => cols,
            Layout::ColMajor => rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_is_involution() {
        assert_eq!(Layout::RowMajor.transposed(), Layout::ColMajor);
        assert_eq!(Layout::RowMajor.transposed().transposed(), Layout::RowMajor);
    }

    #[test]
    fn offsets_follow_definition() {
        // 3x4 row-major with ld=4: (1,2) -> 6.
        assert_eq!(Layout::RowMajor.offset(1, 2, 4), 6);
        // 3x4 col-major with ld=3: (1,2) -> 7.
        assert_eq!(Layout::ColMajor.offset(1, 2, 3), 7);
    }

    #[test]
    fn min_ld_matches_layout() {
        assert_eq!(Layout::RowMajor.min_ld(3, 4), 4);
        assert_eq!(Layout::ColMajor.min_ld(3, 4), 3);
    }

    #[test]
    fn offsets_are_unique_within_bounds() {
        let (rows, cols) = (5, 7);
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let ld = layout.min_ld(rows, cols);
            let mut seen = std::collections::HashSet::new();
            for i in 0..rows {
                for j in 0..cols {
                    assert!(seen.insert(layout.offset(i, j, ld)), "{layout:?} ({i},{j})");
                }
            }
            assert_eq!(seen.len(), rows * cols);
        }
    }
}
