//! Owned dense matrices.

use crate::alloc::AlignedBuf;
use crate::element::Element;
use crate::layout::Layout;
use crate::view::{MatrixView, MatrixViewMut};

/// An owned dense `rows x cols` matrix backed by a 64-byte-aligned buffer.
///
/// The leading dimension always equals the minimum for the layout (no
/// internal padding); callers that need padded panels use the packing
/// buffers in `cake-kernels` instead.
pub struct Matrix<T> {
    buf: AlignedBuf<T>,
    rows: usize,
    cols: usize,
    layout: Layout,
}

impl<T: Element> Matrix<T> {
    /// A zero-filled row-major matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::zeros_with_layout(rows, cols, Layout::RowMajor)
    }

    /// A zero-filled matrix with the given layout.
    pub fn zeros_with_layout(rows: usize, cols: usize, layout: Layout) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Self {
            buf: AlignedBuf::zeroed(len),
            rows,
            cols,
            layout,
        }
    }

    /// Build a row-major matrix from a generator function `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Build a row-major matrix from a flat slice in row-major order.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        let mut m = Self::zeros(rows, cols);
        m.buf.copy_from_slice(data);
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Leading dimension (elements between consecutive rows or columns).
    #[inline]
    pub fn ld(&self) -> usize {
        self.layout.min_ld(self.rows, self.cols)
    }

    /// Flat backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }

    /// Mutable flat backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.buf
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        // audit: checked extent contract; callers index within the matrix by construction
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        // audit: checked dominated by the extent assert above; layout offsets stay inside buf
        self.buf[self.layout.offset(i, j, self.ld())]
    }

    /// Set element at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        // audit: checked extent contract; callers index within the matrix by construction
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        let off = self.layout.offset(i, j, self.ld());
        // audit: checked dominated by the extent assert above
        self.buf[off] = v;
    }

    /// Immutable view of the whole matrix (strided, layout-aware).
    pub fn view(&self) -> MatrixView<'_, T> {
        let ld = self.ld();
        match self.layout {
            Layout::RowMajor => MatrixView::new(&self.buf, self.rows, self.cols, ld, 1),
            Layout::ColMajor => MatrixView::new(&self.buf, self.rows, self.cols, 1, ld),
        }
    }

    /// Mutable view of the whole matrix.
    pub fn view_mut(&mut self) -> MatrixViewMut<'_, T> {
        let ld = self.ld();
        let (rows, cols) = (self.rows, self.cols);
        match self.layout {
            Layout::RowMajor => MatrixViewMut::new(&mut self.buf, rows, cols, ld, 1),
            Layout::ColMajor => MatrixViewMut::new(&mut self.buf, rows, cols, 1, ld),
        }
    }

    /// Copy into the opposite layout (physically transposing storage, not
    /// the logical matrix).
    pub fn to_layout(&self, layout: Layout) -> Matrix<T> {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Matrix::zeros_with_layout(self.rows, self.cols, layout);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(i, j, self.get(i, j));
            }
        }
        out
    }

    /// The logical transpose as a new owned matrix.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Set every element to `v`.
    pub fn fill(&mut self, v: T) {
        for x in self.buf.iter_mut() {
            *x = v;
        }
    }

    /// Sum of all elements widened to `f64` (test/diagnostic helper).
    pub fn sum_f64(&self) -> f64 {
        self.buf.iter().map(|x| x.to_f64()).sum()
    }
}

impl<T: Element> Clone for Matrix<T> {
    fn clone(&self) -> Self {
        Self {
            buf: self.buf.clone(),
            rows: self.rows,
            cols: self.cols,
            layout: self.layout,
        }
    }
}

impl<T: Element> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} ({:?})", self.rows, self.cols, self.layout)?;
        let show_r = self.rows.min(6);
        let show_c = self.cols.min(6);
        for i in 0..show_r {
            write!(f, "  [")?;
            for j in 0..show_c {
                write!(f, " {:>10.4}", self.get(i, j))?;
            }
            if show_c < self.cols {
                write!(f, " ...")?;
            }
            writeln!(f, " ]")?;
        }
        if show_r < self.rows {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_then_set_get() {
        let mut m = Matrix::<f32>::zeros(3, 4);
        assert_eq!(m.get(2, 3), 0.0);
        m.set(2, 3, 5.0);
        assert_eq!(m.get(2, 3), 5.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
    }

    #[test]
    fn from_fn_and_from_rows_agree() {
        let a = Matrix::<f64>::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let flat: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let b = Matrix::from_rows(3, 4, &flat);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }

    #[test]
    fn layout_conversion_preserves_logical_values() {
        let a = Matrix::<f32>::from_fn(5, 3, |i, j| (i * 10 + j) as f32);
        let c = a.to_layout(Layout::ColMajor);
        assert_eq!(c.layout(), Layout::ColMajor);
        for i in 0..5 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), c.get(i, j));
            }
        }
        // Physical order differs.
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn transpose_swaps_dims_and_values() {
        let a = Matrix::<f64>::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        let t = a.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn views_alias_storage() {
        let mut m = Matrix::<f32>::from_fn(4, 4, |i, j| (i * 4 + j) as f32);
        {
            let mut v = m.view_mut();
            v.set(0, 1, -1.0);
        }
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.view().get(3, 3), 15.0);
    }

    #[test]
    fn col_major_view_strides() {
        let m = Matrix::<f64>::from_fn(3, 2, |i, j| (i * 2 + j) as f64).to_layout(Layout::ColMajor);
        let v = m.view();
        assert_eq!(v.row_stride(), 1);
        assert_eq!(v.col_stride(), 3);
        assert_eq!(v.get(2, 1), 5.0);
    }

    #[test]
    fn zero_sized_matrices() {
        let m = Matrix::<f32>::zeros(0, 5);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.as_slice().len(), 0);
        let n = Matrix::<f32>::zeros(5, 0);
        assert_eq!(n.sum_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_rows_rejects_wrong_length() {
        let _ = Matrix::<f32>::from_rows(2, 2, &[1.0, 2.0, 3.0]);
    }
}
