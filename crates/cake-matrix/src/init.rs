//! Deterministic matrix initializers for tests, examples, and benchmarks.

use crate::element::Element;
use crate::matrix::Matrix;

/// Minimal deterministic PRNG (splitmix64) so initializers need no external
/// crates; statistically fine for test/benchmark data, not cryptography.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniformly random matrix in `[-1, 1)`, seeded for reproducibility.
pub fn random<T: Element>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        T::from_f64(rng.next_unit_f64() * 2.0 - 1.0)
    })
}

/// Random matrix with entries drawn from `{-2, -1, 0, 1, 2}`.
///
/// Small-integer matrices make GEMM results exactly representable, so tests
/// can compare against the reference with zero tolerance for modest K.
pub fn random_ints<T: Element>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        T::from_f64((rng.next_u64() % 5) as f64 - 2.0)
    })
}

/// Random full-range `i8` matrix: every value in `[-128, 127]` occurs,
/// including the asymmetric extremes. `random::<i8>` would collapse to
/// zero (its `[-1, 1)` draw truncates), and `random_ints` only spans
/// `{-2..2}` — the narrow-dtype kernels need the corners to exercise
/// sign handling and the unsigned-offset compensation exactly.
pub fn random_i8(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_u64() as u8 as i8)
}

/// `m[i][j] = i * cols + j` — handy for eyeballing packing/layout bugs.
pub fn sequential<T: Element>(rows: usize, cols: usize) -> Matrix<T> {
    Matrix::from_fn(rows, cols, |i, j| T::from_f64((i * cols + j) as f64))
}

/// Identity-like matrix (1 on the main diagonal), works for non-square too.
pub fn eye<T: Element>(rows: usize, cols: usize) -> Matrix<T> {
    Matrix::from_fn(rows, cols, |i, j| if i == j { T::ONE } else { T::ZERO })
}

/// Matrix of all ones.
pub fn ones<T: Element>(rows: usize, cols: usize) -> Matrix<T> {
    Matrix::from_fn(rows, cols, |_, _| T::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible_and_bounded() {
        let a = random::<f32>(8, 8, 42);
        let b = random::<f32>(8, 8, 42);
        let c = random::<f32>(8, 8, 43);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn random_ints_are_small_integers() {
        let a = random_ints::<f64>(16, 16, 7);
        assert!(a
            .as_slice()
            .iter()
            .all(|&x| x.fract() == 0.0 && (-2.0..=2.0).contains(&x)));
    }

    #[test]
    fn random_i8_covers_full_range() {
        let a = random_i8(64, 64, 9);
        let b = random_i8(64, 64, 9);
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.as_slice().iter().any(|&x| x < -100));
        assert!(a.as_slice().iter().any(|&x| x > 100));
        assert!(a.as_slice().iter().any(|&x| x == -128 || x == 127));
    }

    #[test]
    fn sequential_pattern() {
        let a = sequential::<f32>(3, 4);
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.get(2, 3), 11.0);
    }

    #[test]
    fn eye_multiplicative_property_by_hand() {
        let i = eye::<f64>(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
        let rect = eye::<f64>(2, 5);
        assert_eq!(rect.get(1, 1), 1.0);
        assert_eq!(rect.get(1, 4), 0.0);
    }

    #[test]
    fn ones_sums_to_area() {
        let a = ones::<f32>(7, 9);
        assert_eq!(a.sum_f64(), 63.0);
    }
}
