//! Tile-granular memory-access traces through the cache hierarchy.
//!
//! Reproduces the mechanism behind Figure 7: play the exact access
//! sequence each algorithm's inner loops generate — packed A/B slivers and
//! C register tiles — through the LRU [`crate::cache::Hierarchy`], and
//! count where requests are served. CAKE's K-first, LLC-resident-partials
//! schedule shifts requests from DRAM into local memory; GOTO's streamed
//! partial C panels push them out to DRAM.
//!
//! Objects and their cache keys:
//!
//! * `A` sliver — `(mr x kc)` at k-block granularity.
//! * `B` sliver — `(kc x nr)`.
//! * `C` tile — `(mr x nr)`, accessed read-modify-write.

use cake_core::schedule::KFirstSchedule;

use crate::cache::{Hierarchy, HierStats};
use crate::config::CpuConfig;
use crate::engine::{resolve_cake_shape, resolve_goto_params, SimParams};

const MAT_A: u64 = 1;
const MAT_B: u64 = 2;
const MAT_C: u64 = 3;

#[inline]
fn key(mat: u64, i: u64, j: u64) -> u64 {
    debug_assert!(i < (1 << 26) && j < (1 << 26));
    (mat << 56) | (i << 26) | j
}

/// Build the hierarchy for a CPU.
fn hierarchy(cpu: &CpuConfig, p: usize) -> Hierarchy {
    Hierarchy::new(
        p,
        cpu.l1_bytes as u64,
        cpu.l2_bytes as u64,
        cpu.llc_bytes as u64,
    )
}

/// Play a CAKE GEMM's access trace; returns per-level hit statistics.
///
/// Trace volume is `O(M*K*N / (mr*kc*nr))` requests — use problem sizes of
/// a few thousand at most and scale counts by volume when comparing with
/// the paper's 10000^3 run (relative distribution is size-stable once the
/// working sets exceed the caches).
pub fn run_cake_trace(cpu: &CpuConfig, sp: &SimParams) -> HierStats {
    let shape = resolve_cake_shape(cpu, sp);
    let (m, k, n) = (sp.m, sp.k, sp.n);
    let mut h = hierarchy(cpu, sp.p);
    if m == 0 || k == 0 || n == 0 {
        return h.stats;
    }
    let eb = sp.elem_bytes as u64;
    let (mr, nr) = (cpu.mr, cpu.nr);
    let (bm, bk, bn) = (shape.m_block(), shape.k_block(), shape.n_block());
    let grid = cake_core::schedule::BlockGrid::for_problem(m, k, n, bm, bk, bn);

    for c in KFirstSchedule::new(grid, m, n) {
        let (m0, k0, n0) = (c.m * bm, c.k * bk, c.n * bn);
        let ml = bm.min(m - m0);
        let kl = bk.min(k - k0);
        let nl = bn.min(n - n0);
        let a_bytes = (mr * kl) as u64 * eb;
        let b_bytes = (nr * kl) as u64 * eb;
        let c_bytes = (mr * nr) as u64 * eb;

        let n_slivers = nl.div_ceil(nr) as u64;
        let max_s = shape.mc.div_ceil(mr);

        // Cores run strip-parallel; interleave them at (s, t) granularity
        // to approximate concurrency, with each core's A sliver pinned
        // (A-stationary inner loop, s outer / t inner).
        for s in 0..max_s {
            for t in 0..n_slivers {
                for core in 0..shape.p {
                    let strip0 = core * shape.mc;
                    if strip0 >= ml {
                        continue;
                    }
                    let strip_len = shape.mc.min(ml - strip0);
                    if s * mr >= strip_len {
                        continue;
                    }
                    let gs = ((m0 + strip0) / mr + s) as u64;
                    let gt = (n0 / nr) as u64 + t;
                    h.access(core, key(MAT_A, gs, c.k as u64), a_bytes, false);
                    h.access(core, key(MAT_B, gt, c.k as u64), b_bytes, false);
                    h.access(core, key(MAT_C, gs, gt), c_bytes, true);
                }
            }
        }
    }
    h.flush();
    h.stats
}

/// Play a GOTO GEMM's access trace; returns per-level hit statistics.
pub fn run_goto_trace(cpu: &CpuConfig, sp: &SimParams) -> HierStats {
    let g = resolve_goto_params(cpu, sp);
    let (m, k, n) = (sp.m, sp.k, sp.n);
    let mut h = hierarchy(cpu, sp.p);
    if m == 0 || k == 0 || n == 0 {
        return h.stats;
    }
    let eb = sp.elem_bytes as u64;
    let (mr, nr) = (cpu.mr, cpu.nr);
    let (mc, kc, nc, p) = (g.mc, g.kc, g.nc, g.p);

    let mut jc = 0;
    while jc < n {
        let nl = nc.min(n - jc);
        let n_slivers = nl.div_ceil(nr) as u64;
        let mut pc = 0;
        while pc < k {
            let kl = kc.min(k - pc);
            let a_bytes = (mr * kl) as u64 * eb;
            let b_bytes = (nr * kl) as u64 * eb;
            let c_bytes = (mr * nr) as u64 * eb;
            let kb_idx = (pc / kc) as u64;

            // Rounds of p parallel mc-strips.
            let mut ic = 0;
            while ic < m {
                let round_m = (p * mc).min(m - ic);
                let strips = round_m.div_ceil(mc);
                let max_s = mc.div_ceil(mr);
                // GOTO inner loops: jr (t) outer, ir (s) inner — B sliver
                // reused across the A panel.
                for t in 0..n_slivers {
                    for s in 0..max_s {
                        for core in 0..strips {
                            let strip0 = ic + core * mc;
                            let strip_len = mc.min(m - strip0);
                            if s * mr >= strip_len {
                                continue;
                            }
                            let gs = (strip0 / mr + s) as u64;
                            let gt = (jc / nr) as u64 + t;
                            h.access(core, key(MAT_A, gs, kb_idx), a_bytes, false);
                            h.access(core, key(MAT_B, gt, kb_idx), b_bytes, false);
                            // Partial C streams: read-modify-write every
                            // k panel.
                            h.access(core, key(MAT_C, gs, gt), c_bytes, true);
                        }
                    }
                }
                ic += p * mc;
            }
            pc += kc;
        }
        jc += nc;
    }
    h.flush();
    h.stats
}

/// Convert hit counts into the Figure 7a stall-time breakdown: requests
/// served at each level weighted by that level's latency (cycles). Index
/// 0..=3 = L1, L2, LLC, DRAM.
pub fn stall_breakdown_cycles(stats: &HierStats, cpu: &CpuConfig) -> [f64; 4] {
    [
        stats.l1_hits as f64 * cpu.latency_cycles[0],
        stats.l2_hits as f64 * cpu.latency_cycles[1],
        stats.llc_hits as f64 * cpu.latency_cycles[2],
        stats.dram_accesses as f64 * cpu.latency_cycles[3],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(n: usize, p: usize) -> SimParams {
        SimParams::square(n, p)
    }

    #[test]
    fn cake_shifts_traffic_from_dram_to_local_fig7() {
        // The working set (600^3 f32 = 1.4 MB/matrix... use 1200 to exceed
        // the ARM LLC comfortably) must exceed local memory.
        let cpu = CpuConfig::arm_cortex_a53();
        let cake = run_cake_trace(&cpu, &sp(1200, 4));
        let goto = run_goto_trace(&cpu, &sp(1200, 4));

        assert!(
            cake.dram_accesses < goto.dram_accesses,
            "CAKE DRAM {} !< GOTO DRAM {}",
            cake.dram_accesses,
            goto.dram_accesses
        );
        let cake_local = cake.local_hits() as f64 / cake.accesses as f64;
        let goto_local = goto.local_hits() as f64 / goto.accesses as f64;
        assert!(
            cake_local > goto_local,
            "local-hit fraction: cake {cake_local:.4} goto {goto_local:.4}"
        );
    }

    #[test]
    fn paper_reports_25x_dram_gap_on_arm_fig7b() {
        // Paper: ARMPL performs ~2.5x more DRAM requests than CAKE for
        // 3000^3. Require a clear gap (>1.5x) at our reduced size.
        let cpu = CpuConfig::arm_cortex_a53();
        let cake = run_cake_trace(&cpu, &sp(1200, 4));
        let goto = run_goto_trace(&cpu, &sp(1200, 4));
        let ratio = goto.dram_accesses as f64 / cake.dram_accesses.max(1) as f64;
        assert!(ratio > 1.5, "DRAM request ratio {ratio:.2}");
    }

    #[test]
    fn intel_stall_distribution_matches_fig7a_shape() {
        // Working set must exceed the 20 MiB LLC for the streamed-partials
        // difference to reach DRAM: 3072^2 f32 = 37 MiB per matrix.
        let cpu = CpuConfig::intel_i9_10900k();
        let cake = run_cake_trace(&cpu, &sp(3072, 10));
        let goto = run_goto_trace(&cpu, &sp(3072, 10));
        let cake_stalls = stall_breakdown_cycles(&cake, &cpu);
        let goto_stalls = stall_breakdown_cycles(&goto, &cpu);
        // CAKE spends less stall time on main memory than GOTO...
        assert!(cake_stalls[3] < goto_stalls[3]);
        // ...and (relatively) more of its stall time on local levels.
        let cake_frac = cake_stalls[3] / cake_stalls.iter().sum::<f64>();
        let goto_frac = goto_stalls[3] / goto_stalls.iter().sum::<f64>();
        assert!(cake_frac < goto_frac, "cake {cake_frac:.3} goto {goto_frac:.3}");
    }

    #[test]
    fn all_requests_accounted() {
        let cpu = CpuConfig::arm_cortex_a53();
        let s = run_cake_trace(&cpu, &sp(400, 2));
        assert_eq!(s.local_hits() + s.dram_accesses, s.accesses);
        assert!(s.accesses > 0);
    }

    #[test]
    fn empty_problem_produces_empty_trace() {
        let cpu = CpuConfig::arm_cortex_a53();
        let s = run_cake_trace(&cpu, &SimParams::new(0, 64, 64, 2));
        assert_eq!(s.accesses, 0);
    }

    #[test]
    fn trace_volumes_match_between_algorithms() {
        // Same tile work => same number of requests (distribution differs).
        let cpu = CpuConfig::intel_i9_10900k();
        let a = run_cake_trace(&cpu, &sp(768, 4));
        let b = run_goto_trace(&cpu, &sp(768, 4));
        let ratio = a.accesses as f64 / b.accesses as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "request volume mismatch: cake {} goto {}",
            a.accesses,
            b.accesses
        );
    }
}
