//! Packet-level functional simulator of the abstract CB machine
//! (paper Section 6.2 and Figure 3).
//!
//! The paper validated the CB block design with a SystemC simulator in
//! which "standardized packets are used for all communication between
//! simulated hardware modules. Packets originate from external memory and
//! contain headers to control routing as well as fields containing the
//! packet's tile index into the computation space and CB block."
//!
//! This module reproduces that validation path *functionally*: it executes
//! a real (tile-granular) matrix multiplication by moving [`Packet`]s
//! between three modules — external memory, local memory, and a `p x k`
//! core grid — under the K-first snake schedule, and produces
//!
//! * the numerically exact product (verified against a reference in
//!   tests — the "correctness of the CB block design and execution
//!   schedule" check), and
//! * cycle/traffic accounting that independently confirms the
//!   constant-bandwidth property (Figure 4) and cross-checks the analytic
//!   traffic model in `cake_core::traffic`.
//!
//! Tiles are unit scalars (`f64`), which makes the computation space an
//! `M x K x N` grid of MACs exactly as in Figure 2b.

use cake_core::schedule::{BlockGrid, KFirstSchedule};
use cake_matrix::Matrix;
/// Hardware module addresses for packet routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Module {
    /// External DRAM.
    ExternalMemory,
    /// Shared local memory (LLC).
    LocalMemory,
    /// Core `(row, col)` of the processing grid (Figure 3b).
    Core(u16, u16),
}

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// A tile of matrix A at computation-space coords `(m, k)`.
    ATile(f64),
    /// A tile of matrix B at `(k, n)`.
    BTile(f64),
    /// A partial (or complete) result tile of C at `(m, n)`.
    CTile(f64),
}

/// A communication packet (paper: source-routed with tile indices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Originating module.
    pub src: Module,
    /// Destination module.
    pub dst: Module,
    /// Index of the CB block this packet belongs to (execution order).
    pub block: u32,
    /// Tile row index in the computation space (`m` for A/C, `k` for B).
    pub row: u32,
    /// Tile column index (`k` for A, `n` for B/C).
    pub col: u32,
    /// Tile contents.
    pub payload: Payload,
}

/// Configuration of the abstract CB machine.
#[derive(Debug, Clone, Copy)]
pub struct PacketSimConfig {
    /// Rows of the core grid (`m = p * k_grid` tiles per block M-extent;
    /// paper's `p`).
    pub p: usize,
    /// Columns of the core grid = reduction depth of a block in tiles
    /// (paper's `k`).
    pub k_grid: usize,
    /// Aspect factor: block N-extent is `alpha * p * k_grid` tiles.
    pub alpha: usize,
    /// External-memory link bandwidth, tiles per cycle.
    pub dram_tiles_per_cycle: f64,
    /// Local-memory capacity in tiles; the three block surfaces plus the
    /// double-buffered next inputs must fit (Section 4.3 rule).
    pub llc_capacity_tiles: usize,
    /// Cycles one core needs per tile multiply-accumulate.
    pub cycles_per_mac: u64,
}

impl PacketSimConfig {
    /// A machine shaped per Section 3: `p*k x k` core grid, `alpha`-wide
    /// blocks, with the LLC sized by the Section 4.3 rule.
    pub fn balanced(p: usize, k_grid: usize, alpha: usize, dram_tiles_per_cycle: f64) -> Self {
        let (a, b, c) = Self::surfaces_of(p, k_grid, alpha);
        Self {
            p,
            k_grid,
            alpha,
            dram_tiles_per_cycle,
            llc_capacity_tiles: c + 2 * (a + b),
            cycles_per_mac: 1,
        }
    }

    fn surfaces_of(p: usize, k: usize, alpha: usize) -> (usize, usize, usize) {
        let m = p * k;
        let n = alpha * p * k;
        (m * k, k * n, m * n)
    }

    /// Block extents in tiles: `(m, k, n)`.
    pub fn block_dims(&self) -> (usize, usize, usize) {
        (
            self.p * self.k_grid,
            self.k_grid,
            self.alpha * self.p * self.k_grid,
        )
    }
}

/// Counters and outputs of a packet simulation.
#[derive(Debug, Clone)]
pub struct PacketSimResult {
    /// Total cycles (with IO/compute overlap across blocks).
    pub cycles: u64,
    /// Tiles moved over the external-memory link (both directions).
    pub dram_tile_transfers: u64,
    /// Packets exchanged between local memory and cores.
    pub internal_packets: u64,
    /// Largest number of tiles resident in local memory at once
    /// (current block + incoming next-block inputs).
    pub peak_llc_tiles: usize,
    /// Blocks executed.
    pub blocks: usize,
    /// Average external bandwidth, tiles per cycle.
    pub avg_dram_tiles_per_cycle: f64,
    /// MAC operations performed (must equal `M * K * N`).
    pub macs: u64,
}

/// Error conditions the simulator detects (the "corner cases that are
/// difficult to analyze" the paper built its simulator for).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketSimError {
    /// The working set exceeded local memory capacity.
    LlcOverflow {
        /// Tiles that would have been resident.
        needed: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// Operand shapes inconsistent.
    ShapeMismatch(String),
}

impl std::fmt::Display for PacketSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketSimError::LlcOverflow { needed, capacity } => {
                write!(f, "local memory overflow: need {needed} tiles, capacity {capacity}")
            }
            PacketSimError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
        }
    }
}

impl std::error::Error for PacketSimError {}

/// Execute `C = A * B` on the packet machine (`A: M x K`, `B: K x N`
/// tile matrices) and return the result matrix plus accounting.
///
/// The computation is performed through the actual packet dataflow:
/// A tiles are pinned one-per-core, B tiles are broadcast down core-grid
/// columns, partial C tiles are accumulated in local memory across the
/// block's K extent and across blocks along the schedule's K runs, and
/// completed C tiles are shipped back to external memory.
pub fn simulate_packets(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    cfg: &PacketSimConfig,
) -> Result<(Matrix<f64>, PacketSimResult), PacketSimError> {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    if b.rows() != k {
        return Err(PacketSimError::ShapeMismatch(format!(
            "A is {m}x{k} but B is {}x{n}",
            b.rows()
        )));
    }

    let (bm, bk, bn) = cfg.block_dims();
    let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
    let sched = KFirstSchedule::new(grid, m, n);
    let kb = grid.kb;

    let mut c = Matrix::<f64>::zeros(m, n);
    // Partial C panel held in local memory for the current (m, n) run.
    let mut c_panel: Vec<f64> = vec![0.0; bm * bn];

    let mut res = PacketSimResult {
        cycles: 0,
        dram_tile_transfers: 0,
        internal_packets: 0,
        peak_llc_tiles: 0,
        blocks: 0,
        avg_dram_tiles_per_cycle: 0.0,
        macs: 0,
    };

    let mut prev: Option<cake_core::schedule::BlockCoord> = None;
    let mut k_run = 0usize;
    // Carry-over IO time from the pipelined previous block.
    let mut pending_io_cycles = 0f64;

    for (bi, coord) in sched.enumerate() {
        let m0 = coord.m * bm;
        let k0 = coord.k * bk;
        let n0 = coord.n * bn;
        let ml = bm.min(m - m0);
        let kl = bk.min(k - k0);
        let nl = bn.min(n - n0);

        let share_a = prev.is_some_and(|p| p.m == coord.m && p.k == coord.k);
        let share_b = prev.is_some_and(|p| p.k == coord.k && p.n == coord.n);
        let same_panel = prev.is_some_and(|p| p.m == coord.m && p.n == coord.n);
        if same_panel {
            k_run += 1;
        } else {
            k_run = 1;
            // The panel is indexed with stride `bn`; clear it all.
            c_panel.iter_mut().for_each(|x| *x = 0.0);
        }
        prev = Some(coord);

        // --- Capacity check (the Section 4.3 invariant, enforced). ---
        let footprint = ml * kl + kl * nl + ml * nl; // current surfaces
        let incoming = ml * kl + kl * nl; // next block's inputs stream in
        let resident = footprint + incoming;
        if resident > cfg.llc_capacity_tiles {
            return Err(PacketSimError::LlcOverflow {
                needed: resident,
                capacity: cfg.llc_capacity_tiles,
            });
        }
        res.peak_llc_tiles = res.peak_llc_tiles.max(resident);

        // --- IO phase: packets from external memory to local memory. ---
        let mut dram_tiles = 0u64;
        if !share_a {
            dram_tiles += (ml * kl) as u64;
        }
        if !share_b {
            dram_tiles += (kl * nl) as u64;
        }

        // --- Distribute + compute: the core grid (Figure 3b/3d). ---
        // Core (i, j) holds A tile (m0 + i_strip, k0 + j). Each core-grid
        // column j multiplies its A tiles with the broadcast B row j and
        // the column's partial products are summed (outer-product
        // accumulation), then added into the local-memory C panel.
        let mut macs_this_block = 0u64;
        for t in 0..nl {
            // B tile (k0 + j, n0 + t) broadcast to column j: one packet
            // per live grid column.
            res.internal_packets += kl as u64;
            for i in 0..ml {
                // Core at grid position (i % p-strip, j) — functionally we
                // sweep all live rows. Each core performs kl MACs for
                // this output tile (one per grid column).
                let mut acc = 0.0f64;
                for j in 0..kl {
                    // a tile value * b tile value (unit tiles = scalars).
                    acc += a.get(m0 + i, k0 + j) * b.get(k0 + j, n0 + t);
                }
                macs_this_block += kl as u64;
                // Accumulated column result cycles back to local memory.
                c_panel[i * bn + t] += acc;
            }
        }
        res.internal_packets += (ml * nl) as u64; // partials to local memory
        res.internal_packets += (ml * kl) as u64; // A tiles onto cores
        res.macs += macs_this_block;

        // --- Writeback when the K reduction completes. ---
        if k_run == kb {
            for i in 0..ml {
                for t in 0..nl {
                    c.set(m0 + i, n0 + t, c_panel[i * bn + t]);
                }
            }
            dram_tiles += (ml * nl) as u64;
        }

        // --- Timing: IO of this block overlaps the previous block's
        // compute (double buffering); per-block cost is max of the two.
        let compute_cycles = macs_this_block as f64 * cfg.cycles_per_mac as f64
            / (cfg.p * cfg.k_grid) as f64; // p*k cores work in parallel
        let io_cycles = dram_tiles as f64 / cfg.dram_tiles_per_cycle;
        let step = if bi == 0 {
            io_cycles + compute_cycles // pipeline fill
        } else {
            compute_cycles.max(pending_io_cycles)
        };
        pending_io_cycles = io_cycles;
        res.cycles += step.ceil() as u64;
        res.dram_tile_transfers += dram_tiles;
        res.blocks += 1;
    }
    // Drain the final writeback.
    res.cycles += pending_io_cycles.ceil() as u64;

    res.avg_dram_tiles_per_cycle = if res.cycles > 0 {
        res.dram_tile_transfers as f64 / res.cycles as f64
    } else {
        0.0
    };
    Ok((c, res))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_core::traffic::{dram_traffic, CResidency, TrafficParams};
    use cake_matrix::init;

    fn reference(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let mut c = Matrix::<f64>::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for kk in 0..a.cols() {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn packet_machine_computes_the_exact_product() {
        let (m, k, n) = (24, 18, 30);
        let a = init::random::<f64>(m, k, 1);
        let b = init::random::<f64>(k, n, 2);
        let cfg = PacketSimConfig::balanced(2, 3, 1, 4.0);
        let (c, res) = simulate_packets(&a, &b, &cfg).unwrap();
        let expect = reference(&a, &b);
        cake_matrix::compare::assert_gemm_eq(&c, &expect, k);
        assert_eq!(res.macs, (m * k * n) as u64);
    }

    #[test]
    fn ragged_problems_compute_correctly() {
        for (m, k, n) in [(7usize, 5usize, 11usize), (13, 13, 13), (1, 20, 1), (25, 2, 9)] {
            let a = init::random::<f64>(m, k, 3);
            let b = init::random::<f64>(k, n, 4);
            let cfg = PacketSimConfig::balanced(2, 2, 2, 2.0);
            let (c, _) = simulate_packets(&a, &b, &cfg).unwrap();
            cake_matrix::compare::assert_gemm_eq(&c, &reference(&a, &b), k);
        }
    }

    #[test]
    fn dram_transfers_match_analytic_traffic_model() {
        // Independent cross-check: the packet machine's transfer count must
        // equal cake_core::traffic's prediction for the same schedule.
        let (m, k, n) = (32, 24, 40);
        let a = init::random::<f64>(m, k, 5);
        let b = init::random::<f64>(k, n, 6);
        let cfg = PacketSimConfig::balanced(2, 4, 1, 4.0);
        let (_, res) = simulate_packets(&a, &b, &cfg).unwrap();

        let (bm, bk, bn) = cfg.block_dims();
        let tp = TrafficParams { m, k, n, bm, bk, bn };
        let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
        let t = dram_traffic(KFirstSchedule::new(grid, m, n), tp, CResidency::HoldInLlc);
        assert_eq!(res.dram_tile_transfers, t.total());
    }

    #[test]
    fn constant_bandwidth_property_figure4() {
        // Doubling p (with block volume growing p^2) must keep the
        // *average external bandwidth* essentially constant — the paper's
        // central claim, validated on the packet machine.
        let k_grid = 2;
        let dram = 3.0;
        let mut bws = Vec::new();
        for p in [2usize, 4, 8] {
            let (bm, _, bn) = PacketSimConfig::balanced(p, k_grid, 1, dram).block_dims();
            // Problem sized to a whole number of blocks for cleanliness.
            let (m, k, n) = (2 * bm, 8 * k_grid, 2 * bn);
            let a = init::random::<f64>(m, k, 7);
            let b = init::random::<f64>(k, n, 8);
            let cfg = PacketSimConfig::balanced(p, k_grid, 1, dram);
            let (_, res) = simulate_packets(&a, &b, &cfg).unwrap();
            bws.push(res.avg_dram_tiles_per_cycle);
        }
        let lo = bws.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = bws.iter().cloned().fold(0.0, f64::max);
        assert!(
            hi / lo < 1.35,
            "external bandwidth should stay constant as p grows: {bws:?}"
        );
    }

    #[test]
    fn throughput_scales_with_cores_at_constant_bandwidth() {
        // Same setup: cycles per MAC must drop ~p while bandwidth is flat.
        let k_grid = 2;
        let mut cpm = Vec::new();
        for p in [2usize, 4, 8] {
            let (bm, _, bn) = PacketSimConfig::balanced(p, k_grid, 1, 3.0).block_dims();
            let (m, k, n) = (2 * bm, 8 * k_grid, 2 * bn);
            let a = init::random::<f64>(m, k, 9);
            let b = init::random::<f64>(k, n, 10);
            let cfg = PacketSimConfig::balanced(p, k_grid, 1, 3.0);
            let (_, res) = simulate_packets(&a, &b, &cfg).unwrap();
            cpm.push(res.cycles as f64 / res.macs as f64);
        }
        assert!(cpm[1] < 0.6 * cpm[0], "{cpm:?}");
        assert!(cpm[2] < 0.6 * cpm[1], "{cpm:?}");
    }

    #[test]
    fn llc_overflow_is_detected() {
        let a = init::random::<f64>(16, 16, 11);
        let b = init::random::<f64>(16, 16, 12);
        let mut cfg = PacketSimConfig::balanced(2, 2, 1, 2.0);
        cfg.llc_capacity_tiles = 4; // absurdly small
        let err = simulate_packets(&a, &b, &cfg).unwrap_err();
        assert!(matches!(err, PacketSimError::LlcOverflow { .. }));
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = init::random::<f64>(4, 5, 13);
        let b = init::random::<f64>(6, 4, 14);
        let cfg = PacketSimConfig::balanced(1, 2, 1, 2.0);
        assert!(matches!(
            simulate_packets(&a, &b, &cfg),
            Err(PacketSimError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn balanced_config_obeys_sizing_rule() {
        let cfg = PacketSimConfig::balanced(4, 3, 2, 1.0);
        let (bm, bk, bn) = cfg.block_dims();
        assert_eq!((bm, bk, bn), (12, 3, 24));
        let (a, b, c) = (bm * bk, bk * bn, bm * bn);
        assert_eq!(cfg.llc_capacity_tiles, c + 2 * (a + b));
    }
}
