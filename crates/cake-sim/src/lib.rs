//! Architecture simulator for CB-block schedules (paper Section 6.2).
//!
//! The paper validated CAKE with a packet-based SystemC simulator modeling
//! "timings between external memory, local memory, and cores under various
//! system characteristics". This crate is that simulator's Rust
//! counterpart, and the substrate for reproducing the paper's evaluation
//! figures on hardware we do not have (the sandbox has a single core; the
//! paper used a 10-core Intel i9-10900K, a 16-core AMD Ryzen 9 5950X, and
//! a 4-core ARM Cortex-A53):
//!
//! * [`config`] — per-CPU system characteristics (Table 2) including
//!   measured-shape internal-bandwidth curves (pmbw, Figures 10c/11c/12c).
//! * [`cache`] — a variable-object-size LRU cache and an inclusive
//!   L1/L2/LLC hierarchy with per-level hit and DRAM-traffic counters.
//! * [`trace`] — tile-granular memory access traces for the CAKE and GOTO
//!   schedules, fed through the cache hierarchy (Figure 7).
//! * [`packet`] — the packet-level *functional* simulator of the abstract
//!   CB machine (standardized packets between external memory, local
//!   memory, and the core grid) used to validate schedule correctness and
//!   the constant-bandwidth property with real dataflow.
//! * [`event`] — the discrete-event core: a min-heap of
//!   `(tick, seq, component)` wake-ups, per-component clock dividers,
//!   FIFO/fuzzed same-tick tie-break, and the bounded event trace.
//! * [`machine`] — the simulated hardware: shared DRAM channel and LLC
//!   port, per-stream pack units / compute units / rotation barrier,
//!   multi-stream (shared-LLC contention) execution.
//! * [`engine`] — schedule lowering plus the event-machine front end,
//!   producing throughput, DRAM bandwidth, and stall breakdowns
//!   (Figures 9–12), with fuzzed-ordering race checks.
//! * [`closed_form`] — the previous fixed-pipeline engine (feature
//!   `closed-form`, default on), kept as a differential timing oracle.
//! * [`report`] — result records shared by the bench harness.
//! * [`search`] — the exhaustive design-space search CAKE's closed-form
//!   shaping replaces, used to validate the "no design search" claim.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
#[cfg(feature = "closed-form")]
pub mod closed_form;
pub mod config;
pub mod engine;
pub mod event;
pub mod machine;
pub mod packet;
pub mod report;
pub mod search;
pub mod trace;

pub use config::CpuConfig;
pub use engine::{
    check_ordering_invariance, simulate_cake, simulate_goto, simulate_shared_llc, Algo,
    SimOptions, SimParams,
};
pub use event::TieBreak;
pub use report::SimReport;
