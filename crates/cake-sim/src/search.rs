//! Exhaustive design-space search over block shapes — the expensive
//! procedure CAKE's closed-form shaping replaces.
//!
//! The paper's introduction: "the computation schedule is found through a
//! grid search of the parameter space, which becomes computationally
//! intractable for large systems... CAKE achieves superior performance by
//! directly using theoretically optimal CB-partitioned blocks in tiling
//! and scheduling, obviating the need for extensive design search."
//!
//! This module makes that claim testable: [`grid_search`] evaluates every
//! `(mc, nc)` blocking in a candidate grid through the timing engine and
//! returns the best; tests then verify that [`resolve_cake_shape`]'s
//! closed-form choice performs within a few percent of the exhaustive
//! optimum at a vanishing fraction of the cost (a handful of arithmetic
//! operations vs hundreds of simulations — or, on real hardware, hundreds
//! of profiled runs).

use cake_core::shape::CbBlockShape;
use crate::config::CpuConfig;
use crate::engine::{resolve_cake_shape, simulate_cake_with_shape, SimParams};

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The candidate CB block shape.
    pub shape: CbBlockShape,
    /// Simulated wall time, seconds.
    pub seconds: f64,
    /// Simulated throughput, GFLOP/s.
    pub gflops: f64,
    /// Average DRAM bandwidth, GB/s.
    pub dram_bw_gbs: f64,
    /// Whether the shape satisfies the Section 4.3 LRU rule for this CPU.
    pub fits_llc: bool,
}

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Every evaluated point (in evaluation order).
    pub points: Vec<DesignPoint>,
    /// Index of the fastest *feasible* (LLC-fitting) point.
    pub best: usize,
}

impl SearchResult {
    /// The winning design point.
    pub fn best_point(&self) -> &DesignPoint {
        &self.points[self.best]
    }

    /// Number of simulations the search spent.
    pub fn evaluations(&self) -> usize {
        self.points.len()
    }
}

/// Candidate grid: `mc` in multiples of `mr` up to the L2 bound, `nc` in
/// multiples of `nr` from `p * nr` (alpha >= 1 needs at least one strip
/// width per core) up to an LLC-scale cap.
pub fn candidate_grid(cpu: &CpuConfig, p: usize, steps: usize) -> Vec<(usize, usize)> {
    assert!(steps >= 2);
    let s_l2 = cpu.l2_bytes / 4;
    let mc_max = (((s_l2 / 2) as f64).sqrt() as usize / cpu.mr).max(1) * cpu.mr;
    let s_llc = cpu.llc_bytes / 4;
    let nc_cap = (s_llc / mc_max.max(1)).max(cpu.nr).max(p * cpu.nr);

    let mut grid = Vec::new();
    for i in 1..=steps {
        let mc = (mc_max * i / steps / cpu.mr).max(1) * cpu.mr;
        for j in 1..=steps {
            let nc = (nc_cap * j / steps / cpu.nr).max(1) * cpu.nr;
            grid.push((mc, nc));
        }
    }
    grid.sort_unstable();
    grid.dedup();
    grid
}

/// Evaluate every candidate `(mc, nc)` blocking for an `n^3` f32 problem on
/// `p` cores of `cpu`; `kc = mc` (square A panels, as both CAKE and GOTO
/// require).
pub fn grid_search(cpu: &CpuConfig, n: usize, p: usize, steps: usize) -> SearchResult {
    let sp = SimParams::square(n, p);
    let mut points = Vec::new();
    let mut best: Option<usize> = None;
    for (mc, nc) in candidate_grid(cpu, p, steps) {
        let shape = CbBlockShape::fixed(p, mc, mc, nc);
        let rep = simulate_cake_with_shape(cpu, &sp, &shape);
        let fits = shape.fits_llc_lru(cpu.llc_bytes, sp.elem_bytes);
        let idx = points.len();
        points.push(DesignPoint {
            shape,
            seconds: rep.seconds,
            gflops: rep.gflops,
            dram_bw_gbs: rep.avg_dram_bw_gbs,
            fits_llc: fits,
        });
        if fits {
            let better = match best {
                None => true,
                Some(b) => rep.seconds < points[b].seconds,
            };
            if better {
                best = Some(idx);
            }
        }
    }
    SearchResult {
        best: best.expect("candidate grid contained no feasible shape"),
        points,
    }
}

/// Evaluate the closed-form CAKE shape on the same problem, for comparison
/// against [`grid_search`].
pub fn analytic_point(cpu: &CpuConfig, n: usize, p: usize) -> DesignPoint {
    let sp = SimParams::square(n, p);
    let shape = resolve_cake_shape(cpu, &sp);
    let rep = simulate_cake_with_shape(cpu, &sp, &shape);
    DesignPoint {
        shape,
        seconds: rep.seconds,
        gflops: rep.gflops,
        dram_bw_gbs: rep.avg_dram_bw_gbs,
        fits_llc: shape.fits_llc_lru(cpu.llc_bytes, sp.elem_bytes),
    }
}

/// Rank of the closed-form shape against a search result: `(rank, field)`
/// where `rank` is 1-based among *feasible* points ordered by simulated
/// seconds (the analytic point inserted into the field), and `field` is the
/// number of feasible candidates. Rank 1 means the closed form beat every
/// searched design.
pub fn analytic_rank(res: &SearchResult, analytic: &DesignPoint) -> (usize, usize) {
    let feasible: Vec<f64> =
        res.points.iter().filter(|p| p.fits_llc).map(|p| p.seconds).collect();
    let faster = feasible.iter().filter(|s| **s < analytic.seconds).count();
    (faster + 1, feasible.len())
}

/// Position of the closed-form shape in the searched performance spread:
/// `(analytic - best) / (worst - best)` over feasible points, in `[0, 1]`
/// (0 = matches the exhaustive optimum, 1 = as slow as the worst feasible
/// design). This is the robust "top decile" metric: ordinal rank is
/// meaningless in the flat basin around the optimum, where dozens of
/// near-identical blockings differ by fractions of a percent.
pub fn performance_position(res: &SearchResult, analytic: &DesignPoint) -> f64 {
    let feasible: Vec<f64> =
        res.points.iter().filter(|p| p.fits_llc).map(|p| p.seconds).collect();
    let best = feasible.iter().copied().fold(f64::INFINITY, f64::min);
    let worst = feasible.iter().copied().fold(0.0_f64, f64::max);
    if worst <= best {
        return 0.0;
    }
    ((analytic.seconds - best) / (worst - best)).max(0.0)
}

// ---------------------------------------------------------------------------
// Autotune scoring: rank the deterministic candidate set from
// `cake_core::tune` through the event-driven engine on a host-shaped CPU.
// ---------------------------------------------------------------------------

/// One simulator-scored autotune candidate.
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// The candidate (tier, tile, shape) being scored.
    pub cand: cake_core::TuneCandidate,
    /// Simulated wall time, seconds.
    pub seconds: f64,
    /// Simulated throughput, GFLOP/s.
    pub gflops: f64,
}

/// Score every [`cake_core::candidate_points`] candidate for
/// `(m, k, n, dtype, p)` through the event-driven engine on `cpu`
/// (typically [`CpuConfig::detected_host`]), fastest first.
///
/// Each candidate is simulated on a tier-adjusted copy of `cpu`: the
/// engine's register tile becomes the candidate's `(mr, nr)` and its
/// sustained MAC rate scales by the tile-area ratio against `cpu`'s
/// reference tile, so wider-tile tiers simulate proportionally faster
/// compute while the memory system stays the host's. Absolute GFLOP/s are
/// model numbers; the *ranking* is what the tuner consumes (the top-K go
/// on to on-host micro-benchmarks in `cake-bench`). Deterministic: ties
/// break by (tier, mc, kc, nc).
#[allow(clippy::too_many_arguments)]
pub fn autotune(
    cpu: &CpuConfig,
    m: usize,
    k: usize,
    n: usize,
    dtype: &str,
    p: usize,
    elem_bytes: usize,
) -> Vec<ScoredCandidate> {
    let cands = cake_core::candidate_points(
        dtype,
        p,
        m,
        k,
        n,
        cpu.l2_bytes,
        cpu.llc_bytes,
        elem_bytes,
    );
    let ref_tile = (cpu.mr * cpu.nr).max(1) as f64;
    let mut scored: Vec<ScoredCandidate> = cands
        .into_iter()
        .map(|cand| {
            let tier_cpu = CpuConfig {
                mr: cand.mr,
                nr: cand.nr,
                macs_per_cycle_f32: cpu.macs_per_cycle_f32 * (cand.mr * cand.nr) as f64
                    / ref_tile,
                ..cpu.clone()
            };
            let mut sp = SimParams::new(m, k, n, p);
            sp.elem_bytes = elem_bytes;
            let rep = simulate_cake_with_shape(&tier_cpu, &sp, &cand.shape);
            ScoredCandidate {
                cand,
                seconds: rep.seconds,
                gflops: rep.gflops,
            }
        })
        .collect();
    scored.sort_by(|a, b| {
        a.seconds
            .total_cmp(&b.seconds)
            .then_with(|| (a.cand.tier as usize).cmp(&(b.cand.tier as usize)))
            .then_with(|| {
                (a.cand.shape.mc, a.cand.shape.kc, a.cand.shape.nc).cmp(&(
                    b.cand.shape.mc,
                    b.cand.shape.kc,
                    b.cand.shape.nc,
                ))
            })
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn autotune_scores_and_ranks_candidates() {
        let cpu = CpuConfig::intel_i9_10900k();
        let scored = autotune(&cpu, 256, 256, 256, "f32", 2, 4);
        assert!(!scored.is_empty());
        // Fastest first, with finite positive times.
        for w in scored.windows(2) {
            assert!(w[0].seconds <= w[1].seconds + 1e-15);
        }
        for s in &scored {
            assert!(s.seconds > 0.0 && s.seconds.is_finite());
            assert!(s.gflops > 0.0);
            assert!(s.cand.shape.fits_llc_lru(cpu.llc_bytes, 4));
        }
        // All three tiers competed.
        for tier in cake_kernels_tiers() {
            assert!(scored.iter().any(|s| s.cand.tier.name() == tier), "{tier} absent");
        }
    }

    fn cake_kernels_tiers() -> [&'static str; 3] {
        ["portable", "avx2", "avx512"]
    }

    #[test]
    fn detected_host_folds_topology_and_caches() {
        let host = CpuConfig::detected_host(256 * 1024, 8 * 1024 * 1024);
        assert_eq!(host.cores, cake_core::topology::available_cores().max(1));
        assert_eq!(host.l2_bytes, 256 * 1024);
        assert_eq!(host.llc_bytes, 8 * 1024 * 1024);
        assert!(host.name.starts_with("host"));
        assert!(host.dram_bw_gbs > 0.0 && host.freq_ghz > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// ISSUE satellite: for a fixed host config the tuner's ranking is
        /// a pure function of its inputs.
        #[test]
        fn autotune_is_deterministic(p in 1usize..4, dt in 0usize..4) {
            let dtype = ["f32", "f64", "int8", "bf16"][dt];
            let elem = [4usize, 8, 1, 2][dt];
            let cpu = CpuConfig::detected_host(256 * 1024, 4 * 1024 * 1024);
            let a = autotune(&cpu, 128, 96, 160, dtype, p, elem);
            let b = autotune(&cpu, 128, 96, 160, dtype, p, elem);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.cand, y.cand);
                prop_assert_eq!(x.seconds.to_bits(), y.seconds.to_bits());
            }
        }
    }

    #[test]
    fn grid_contains_only_kernel_aligned_shapes() {
        let cpu = CpuConfig::intel_i9_10900k();
        let grid = candidate_grid(&cpu, 4, 5);
        assert!(grid.len() >= 10);
        for (mc, nc) in grid {
            assert_eq!(mc % cpu.mr, 0);
            assert_eq!(nc % cpu.nr, 0);
        }
    }

    #[test]
    fn search_finds_a_feasible_optimum() {
        let cpu = CpuConfig::intel_i9_10900k();
        let res = grid_search(&cpu, 2304, 4, 4);
        let best = res.best_point();
        assert!(best.fits_llc);
        for p in &res.points {
            if p.fits_llc {
                assert!(best.seconds <= p.seconds + 1e-12);
            }
        }
    }

    #[test]
    fn analytic_shape_is_near_searched_optimum_intel() {
        // The paper's headline claim: no design search needed. The
        // closed-form shape must be within 10% of a 6x6-grid exhaustive
        // search on the Intel config.
        let cpu = CpuConfig::intel_i9_10900k();
        for p in [2usize, 8] {
            let searched = grid_search(&cpu, 4608, p, 6);
            let analytic = analytic_point(&cpu, 4608, p);
            let ratio = analytic.seconds / searched.best_point().seconds;
            assert!(
                ratio <= 1.10,
                "p={p}: analytic {:.4}s vs searched {:.4}s (x{ratio:.3}, shape {} vs {})",
                analytic.seconds,
                searched.best_point().seconds,
                analytic.shape,
                searched.best_point().shape,
            );
            // And it does so ~36x cheaper in evaluations.
            assert!(searched.evaluations() >= 30);
        }
    }

    #[test]
    fn analytic_shape_is_near_searched_optimum_arm() {
        // Same claim on the bandwidth-starved machine, where the search
        // space actually matters (bad shapes are DRAM-bound).
        let cpu = CpuConfig::arm_cortex_a53();
        let searched = grid_search(&cpu, 1500, 4, 6);
        let analytic = analytic_point(&cpu, 1500, 4);
        let ratio = analytic.seconds / searched.best_point().seconds;
        assert!(ratio <= 1.15, "ratio {ratio:.3}");
    }

    #[test]
    fn search_exposes_bad_designs() {
        // The spread between best and worst feasible design must be real —
        // otherwise "no search needed" would be vacuous.
        let cpu = CpuConfig::arm_cortex_a53();
        let res = grid_search(&cpu, 1500, 4, 6);
        let feasible: Vec<&DesignPoint> = res.points.iter().filter(|p| p.fits_llc).collect();
        let best = res.best_point().seconds;
        let worst = feasible.iter().map(|p| p.seconds).fold(0.0, f64::max);
        assert!(
            worst / best > 1.2,
            "design space too flat: best {best:.4}, worst {worst:.4}"
        );
    }

    #[test]
    fn infeasible_shapes_are_flagged_not_selected() {
        let cpu = CpuConfig::arm_cortex_a53();
        let res = grid_search(&cpu, 1000, 4, 5);
        assert!(res.points.iter().any(|p| !p.fits_llc), "grid should cover infeasible region");
        assert!(res.best_point().fits_llc);
    }
    #[test]
    fn exhaustive_search_ranks_closed_form_shape_in_top_decile() {
        // Regression gate for the "no design search" claim on the new
        // event engine: over a dense exhaustive grid, the closed-form
        // shape must rank within the top decile of feasible designs on
        // both a compute-bound and a bandwidth-starved machine.
        for (cpu, n, p) in [
            (CpuConfig::intel_i9_10900k(), 4608, 8),
            (CpuConfig::arm_cortex_a53(), 3000, 4),
        ] {
            let res = grid_search(&cpu, n, p, 12);
            let analytic = analytic_point(&cpu, n, p);
            let pos = performance_position(&res, &analytic);
            let (rank, field) = analytic_rank(&res, &analytic);
            assert!(
                pos <= 0.10,
                "{}: closed form at {:.1}% of the searched spread (rank {rank}/{field})",
                cpu.name,
                pos * 100.0
            );
            // And anything that does nose it out is within a couple percent
            // — the basin around the optimum, not a genuinely better design.
            let best = res.best_point().seconds;
            assert!(
                analytic.seconds <= best * 1.05,
                "{}: analytic {:.4}s vs searched best {best:.4}s",
                cpu.name,
                analytic.seconds
            );
        }
    }
}
