//! Block-level discrete-event timing engine.
//!
//! Models what the paper's SystemC simulator models (Section 6.2): the
//! timings between external memory, local memory, and cores. Execution is
//! a sequence of *steps* (CB blocks for CAKE, panel rounds for GOTO); each
//! step has a compute time, a DRAM-IO time, and an internal (LLC<->cores)
//! IO time. With double buffering, IO overlaps compute, so a step costs
//! `max(t_compute, t_dram, t_internal)`; the excess of either IO time over
//! compute time is recorded as stall time (the quantity VTune/perf report
//! in Figure 7, and the mechanism behind every saturation in Figures
//! 9–12).

use cake_core::schedule::{BlockGrid, KFirstSchedule};
use cake_core::shape::CbBlockShape;
use cake_core::tune;
use cake_goto::params::GotoParams;

use crate::config::CpuConfig;
use crate::report::SimReport;

/// Inputs for one simulated GEMM.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Problem extents.
    pub m: usize,
    /// Reduction extent.
    pub k: usize,
    /// Column extent.
    pub n: usize,
    /// Cores to use.
    pub p: usize,
    /// Element size in bytes (4 for the paper's f32 experiments).
    pub elem_bytes: usize,
    /// CB-block aspect factor; `None` = auto-select from DRAM bandwidth
    /// (Section 3.2). Ignored by GOTO.
    pub alpha: Option<f64>,
    /// Override the measured internal-bandwidth curve (used for the
    /// paper's dashed "extrapolated" series, which assume internal
    /// bandwidth keeps growing linearly with cores).
    pub internal_bw_gbs_override: Option<f64>,
    /// Override the LLC size (the extrapolations also assume local memory
    /// grows quadratically with core count).
    pub llc_bytes_override: Option<usize>,
}

impl SimParams {
    /// Square `n x n x n` problem on `p` cores, f32.
    pub fn square(n: usize, p: usize) -> Self {
        Self {
            m: n,
            k: n,
            n,
            p,
            elem_bytes: 4,
            alpha: None,
            internal_bw_gbs_override: None,
            llc_bytes_override: None,
        }
    }

    /// General `m x k x n` problem on `p` cores, f32.
    pub fn new(m: usize, k: usize, n: usize, p: usize) -> Self {
        Self {
            m,
            k,
            n,
            p,
            elem_bytes: 4,
            alpha: None,
            internal_bw_gbs_override: None,
            llc_bytes_override: None,
        }
    }

    fn llc_bytes(&self, cpu: &CpuConfig) -> usize {
        self.llc_bytes_override.unwrap_or(cpu.llc_bytes)
    }

    fn internal_bw_gbs(&self, cpu: &CpuConfig) -> f64 {
        self.internal_bw_gbs_override
            .unwrap_or_else(|| cpu.internal_bw_gbs(self.p))
    }
}

/// Resolve the CB shape the CAKE library would use on this CPU, clamped to
/// the problem so small matrices still spread across all cores.
pub fn resolve_cake_shape(cpu: &CpuConfig, sp: &SimParams) -> CbBlockShape {
    let macs = cpu.macs_per_cycle_f32;
    let llc = sp.llc_bytes(cpu);
    let probe = CbBlockShape::derive(sp.p, 1.0, cpu.l2_bytes, llc, sp.elem_bytes, cpu.mr, cpu.nr);
    let alpha = sp.alpha.unwrap_or_else(|| {
        tune::select_alpha(cpu.dram_bw_gbs, probe.mc, macs, sp.elem_bytes, cpu.freq_ghz)
    });
    let shape = CbBlockShape::derive(sp.p, alpha, cpu.l2_bytes, llc, sp.elem_bytes, cpu.mr, cpu.nr);

    // Clamp to the problem (mirrors `cake_core::api`), balancing mc so the
    // final M-block is not ragged.
    let strip = sp.m.div_ceil(sp.p).div_ceil(cpu.mr).max(1) * cpu.mr;
    let mc = CbBlockShape::balance_mc(sp.m, sp.p, shape.mc.min(strip).max(cpu.mr), cpu.mr);
    let kc = shape.kc.min(sp.k.max(1));
    let nc = shape.nc.min(sp.n.div_ceil(cpu.nr).max(1) * cpu.nr).max(cpu.nr);
    CbBlockShape::fixed(sp.p, mc, kc, nc)
}

/// Resolve the GOTO blocking for this CPU.
pub fn resolve_goto_params(cpu: &CpuConfig, sp: &SimParams) -> GotoParams {
    let g = GotoParams::derive(
        sp.p,
        cpu.l2_bytes,
        sp.llc_bytes(cpu),
        sp.elem_bytes,
        cpu.mr,
        cpu.nr,
    );
    // Clamp like the library would for small problems.
    let mc = g.mc.min(sp.m.div_ceil(cpu.mr).max(1) * cpu.mr);
    let kc = g.kc.min(sp.k.max(1));
    let nc = g.nc.min(sp.n.div_ceil(cpu.nr).max(1) * cpu.nr).max(cpu.nr);
    GotoParams::fixed(sp.p, mc.max(cpu.mr), kc, nc)
}

struct StepAccumulator {
    seconds: f64,
    dram_bytes: u64,
    dram_stall: f64,
    int_stall: f64,
    steps: usize,
    dram_gbps: f64,
    int_gbps: f64,
    freq_hz: f64,
    macs_per_cycle: f64,
}

impl StepAccumulator {
    fn new(cpu: &CpuConfig, sp: &SimParams) -> Self {
        Self {
            seconds: 0.0,
            dram_bytes: 0,
            dram_stall: 0.0,
            int_stall: 0.0,
            steps: 0,
            dram_gbps: cpu.usable_dram_bw_gbs() * 1e9,
            int_gbps: sp.internal_bw_gbs(cpu) * 1e9,
            freq_hz: cpu.freq_ghz * 1e9,
            macs_per_cycle: cpu.macs_per_cycle_f32,
        }
    }

    /// One step: `macs` multiply-accumulates on `active` cores, moving
    /// `ext_bytes` over the DRAM bus and `int_bytes` over the LLC bus.
    fn step(&mut self, macs: f64, active: usize, ext_bytes: u64, int_bytes: u64) {
        let t_comp = macs / (active.max(1) as f64 * self.macs_per_cycle) / self.freq_hz;
        let t_dram = ext_bytes as f64 / self.dram_gbps;
        let t_int = int_bytes as f64 / self.int_gbps;
        let t = t_comp.max(t_dram).max(t_int);
        self.seconds += t;
        self.dram_bytes += ext_bytes;
        self.dram_stall += (t_dram - t_comp).max(0.0);
        self.int_stall += (t_int - t_comp).max(0.0);
        self.steps += 1;
    }

    fn report(self, cpu: &CpuConfig, algo: &str, sp: &SimParams) -> SimReport {
        let flops = 2.0 * sp.m as f64 * sp.k as f64 * sp.n as f64;
        SimReport {
            cpu: cpu.name.clone(),
            algo: algo.into(),
            p: sp.p,
            m: sp.m,
            k: sp.k,
            n: sp.n,
            seconds: self.seconds,
            gflops: if self.seconds > 0.0 { flops / self.seconds / 1e9 } else { 0.0 },
            dram_bytes: self.dram_bytes,
            avg_dram_bw_gbs: if self.seconds > 0.0 {
                self.dram_bytes as f64 / self.seconds / 1e9
            } else {
                0.0
            },
            dram_stall_seconds: self.dram_stall,
            internal_stall_seconds: self.int_stall,
            steps: self.steps,
        }
    }
}

/// Simulate a CAKE GEMM on `cpu`.
pub fn simulate_cake(cpu: &CpuConfig, sp: &SimParams) -> SimReport {
    let shape = resolve_cake_shape(cpu, sp);
    simulate_cake_with_shape(cpu, sp, &shape)
}

/// Simulate a CAKE GEMM with an explicit CB shape (ablations).
pub fn simulate_cake_with_shape(cpu: &CpuConfig, sp: &SimParams, shape: &CbBlockShape) -> SimReport {
    let (m, k, n) = (sp.m, sp.k, sp.n);
    let mut acc = StepAccumulator::new(cpu, sp);
    if m == 0 || k == 0 || n == 0 {
        return acc.report(cpu, "CAKE", sp);
    }
    let (bm, bk, bn) = (shape.m_block(), shape.k_block(), shape.n_block());
    let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
    let sched = KFirstSchedule::new(grid, m, n);
    let eb = sp.elem_bytes as u64;
    let wa = if cpu.write_allocate { 2 } else { 1 };
    let kb = grid.kb;

    let mut prev: Option<cake_core::schedule::BlockCoord> = None;
    let mut k_run = 0usize; // visits to the current (m, n) panel
    for c in sched {
        let ml = bm.min(m - c.m * bm);
        let kl = bk.min(k - c.k * bk);
        let nl = bn.min(n - c.n * bn);

        let share_a = prev.is_some_and(|p| p.m == c.m && p.k == c.k);
        let share_b = prev.is_some_and(|p| p.k == c.k && p.n == c.n);
        let prev_panel = prev.map(|p| (p.m, p.n));
        prev = Some(c);

        let mut ext = 0u64;
        if !share_a {
            ext += (ml * kl) as u64 * eb;
        }
        if !share_b {
            ext += (kl * nl) as u64 * eb;
        }
        // Partial C stays in the LLC; written to DRAM once, when the
        // K-reduction for this (m, n) panel completes. K runs are
        // contiguous under the K-first schedule, so the panel completes on
        // its kb-th consecutive visit.
        if prev_panel == Some((c.m, c.n)) {
            k_run += 1;
        } else {
            k_run = 1;
        }
        if k_run == kb {
            // Completed panel written once; write-allocate parts read the
            // destination lines first.
            ext += (ml * nl) as u64 * eb * wa;
        }

        // Internal traffic: read A + B once, read + write the partial C
        // panel (Eq. 3 / Eq. 6).
        let int_bytes = ((ml * kl) + (kl * nl) + 2 * (ml * nl)) as u64 * eb;

        let macs = ml as f64 * kl as f64 * nl as f64;
        let active = ml.div_ceil(shape.mc).min(shape.p);
        acc.step(macs, active, ext, int_bytes);
    }
    acc.report(cpu, "CAKE", sp)
}

/// Simulate a GOTO GEMM on `cpu`.
pub fn simulate_goto(cpu: &CpuConfig, sp: &SimParams) -> SimReport {
    let params = resolve_goto_params(cpu, sp);
    simulate_goto_with_params(cpu, sp, &params)
}

/// Simulate a GOTO GEMM with explicit blocking (ablations).
pub fn simulate_goto_with_params(cpu: &CpuConfig, sp: &SimParams, g: &GotoParams) -> SimReport {
    let (m, k, n) = (sp.m, sp.k, sp.n);
    let mut acc = StepAccumulator::new(cpu, sp);
    if m == 0 || k == 0 || n == 0 {
        return acc.report(cpu, "GOTO", sp);
    }
    let eb = sp.elem_bytes as u64;
    let wa = if cpu.write_allocate { 2 } else { 1 };
    let (mc, kc, nc, p) = (g.mc, g.kc, g.nc, g.p);
    let kb = k.div_ceil(kc);

    let mut jc = 0;
    while jc < n {
        let nl = nc.min(n - jc);
        for pc_idx in 0..kb {
            let kl = kc.min(k - pc_idx * kc);
            let mut b_pending = (kl * nl) as u64 * eb; // B packed once per (jc, pc)
            // Parallel rounds over ic strips.
            let mut ic = 0;
            while ic < m {
                let round_m = (p * mc).min(m - ic);
                let active = round_m.div_ceil(mc);
                let a_bytes = (round_m * kl) as u64 * eb;
                let c_panel = (round_m * nl) as u64 * eb;
                // C streams: read previous partials (after the first k
                // panel), write partials/finals every round.
                let c_reads = if pc_idx > 0 { c_panel } else { 0 };
                let c_writes = c_panel * wa;
                let ext = a_bytes + b_pending + c_reads + c_writes;
                b_pending = 0;

                let int_bytes = a_bytes + (kl * nl) as u64 * eb + 2 * c_panel;
                let macs = round_m as f64 * kl as f64 * nl as f64;
                acc.step(macs, active, ext, int_bytes);
                ic += p * mc;
            }
        }
        jc += nc;
    }
    acc.report(cpu, "GOTO", sp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intel() -> CpuConfig {
        CpuConfig::intel_i9_10900k()
    }
    fn arm() -> CpuConfig {
        CpuConfig::arm_cortex_a53()
    }

    #[test]
    fn cake_dram_bw_flat_in_cores_fig10a() {
        let cpu = intel();
        let bw: Vec<f64> = (1..=10)
            .map(|p| simulate_cake(&cpu, &SimParams::square(4608, p)).avg_dram_bw_gbs)
            .collect();
        // CAKE's average DRAM bandwidth must stay in a narrow band while
        // core count grows 10x (paper: "does not need to increase DRAM
        // bandwidth to utilize more cores").
        let lo = bw.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = bw.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo < 2.0, "CAKE BW varied too much: {bw:?}");
        // And stays far below the 40 GB/s the machine offers.
        assert!(hi < 20.0, "CAKE BW should be modest, got {hi}");
    }

    #[test]
    fn goto_dram_bw_grows_with_cores_fig10a() {
        let cpu = intel();
        let bw1 = simulate_goto(&cpu, &SimParams::square(4608, 1)).avg_dram_bw_gbs;
        let bw10 = simulate_goto(&cpu, &SimParams::square(4608, 10)).avg_dram_bw_gbs;
        assert!(
            bw10 > 3.0 * bw1,
            "GOTO BW must grow with p: {bw1:.2} -> {bw10:.2}"
        );
    }

    #[test]
    fn cake_and_goto_throughput_comparable_on_intel_fig10b() {
        // Paper: CAKE within ~3-10% of MKL on the Intel part for large MM.
        let cpu = intel();
        let c = simulate_cake(&cpu, &SimParams::square(4608, 10));
        let g = simulate_goto(&cpu, &SimParams::square(4608, 10));
        let ratio = c.gflops / g.gflops;
        assert!(
            (0.8..=1.6).contains(&ratio),
            "CAKE/GOTO = {ratio:.2} (cake {:.0}, goto {:.0})",
            c.gflops,
            g.gflops
        );
    }

    #[test]
    fn arm_goto_is_bandwidth_starved_fig11() {
        // Paper: on the ARM part ARMPL cannot scale - DRAM BW (2 GB/s) is
        // the binding constraint - while CAKE keeps scaling.
        let cpu = arm();
        let c4 = simulate_cake(&cpu, &SimParams::square(3000, 4));
        let g4 = simulate_goto(&cpu, &SimParams::square(3000, 4));
        assert!(
            c4.gflops > 1.3 * g4.gflops,
            "CAKE {:.2} should clearly beat GOTO {:.2} on ARM",
            c4.gflops,
            g4.gflops
        );
        // GOTO is DRAM-stalled a significant fraction of the time.
        assert!(g4.dram_stall_fraction() > 0.25, "{}", g4.dram_stall_fraction());
    }

    #[test]
    fn cake_speedup_scales_on_arm_fig9b() {
        let cpu = arm();
        let t1 = simulate_cake(&cpu, &SimParams::square(3000, 1)).gflops;
        let t4 = simulate_cake(&cpu, &SimParams::square(3000, 4)).gflops;
        let speedup = t4 / t1;
        assert!(speedup > 2.2, "CAKE ARM speedup {speedup:.2}");
        // GOTO's speedup must be visibly worse.
        let g1 = simulate_goto(&cpu, &SimParams::square(3000, 1)).gflops;
        let g4 = simulate_goto(&cpu, &SimParams::square(3000, 4)).gflops;
        assert!(t4 / t1 > g4 / g1, "cake {speedup:.2} vs goto {:.2}", g4 / g1);
    }

    #[test]
    fn internal_bw_override_extends_scaling() {
        // With the measured (saturating) curve, Intel CAKE throughput at
        // 10 cores trails the idealized linear-internal-bandwidth case.
        let cpu = intel();
        let measured = simulate_cake(&cpu, &SimParams::square(4608, 10));
        let mut sp = SimParams::square(4608, 10);
        sp.internal_bw_gbs_override = Some(cpu.internal_bw.extrapolated(10));
        let ideal = simulate_cake(&cpu, &sp);
        assert!(ideal.gflops >= measured.gflops);
    }

    #[test]
    fn traffic_roughly_matches_analytic_model() {
        // Engine DRAM traffic vs cake_core::traffic for the same shape.
        use cake_core::traffic::{dram_traffic, CResidency, TrafficParams};
        let cpu = intel();
        let sp = SimParams::square(2304, 4);
        let shape = resolve_cake_shape(&cpu, &sp);
        let rep = simulate_cake_with_shape(&cpu, &sp, &shape);

        let tp = TrafficParams {
            m: sp.m,
            k: sp.k,
            n: sp.n,
            bm: shape.m_block(),
            bk: shape.k_block(),
            bn: shape.n_block(),
        };
        let grid = BlockGrid::for_problem(sp.m, sp.k, sp.n, tp.bm, tp.bk, tp.bn);
        let t = dram_traffic(KFirstSchedule::new(grid, sp.m, sp.n), tp, CResidency::HoldInLlc);
        let analytic = t.total_bytes(4);
        let ratio = rep.dram_bytes as f64 / analytic as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "engine {} vs analytic {analytic} (ratio {ratio:.3})",
            rep.dram_bytes
        );
    }

    #[test]
    fn traffic_exactly_matches_analytic_model_on_kfirst_schedules() {
        // Stronger than the ratio check above: for K-first schedules the
        // engine's per-block accounting (adjacency-shared A/B, one final C
        // write per completed panel, write-allocate factor) is the *same
        // function* as cake_core::traffic — so the byte totals must be
        // u64-equal, ragged edges and all, on both write-allocate settings.
        use cake_core::traffic::{dram_traffic, CResidency, TrafficParams};
        for cpu in [intel(), arm()] {
            let wa: u64 = if cpu.write_allocate { 2 } else { 1 };
            for (m, k, n, p, mc, kc, nc) in
                [(48, 24, 48, 4, 4, 8, 16), (50, 23, 41, 2, 8, 8, 24), (16, 64, 16, 1, 16, 16, 16)]
            {
                let sp = SimParams::new(m, k, n, p);
                let shape = cake_core::shape::CbBlockShape::fixed(p, mc, kc, nc);
                let rep = simulate_cake_with_shape(&cpu, &sp, &shape);

                let tp = TrafficParams {
                    m,
                    k,
                    n,
                    bm: shape.m_block(),
                    bk: shape.k_block(),
                    bn: shape.n_block(),
                };
                let grid = BlockGrid::for_problem(m, k, n, tp.bm, tp.bk, tp.bn);
                let t = dram_traffic(KFirstSchedule::new(grid, m, n), tp, CResidency::HoldInLlc);
                let analytic = (t.a_loads + t.b_loads + t.c_final_writes * wa)
                    * sp.elem_bytes as u64;
                assert_eq!(
                    rep.dram_bytes, analytic,
                    "{}: {m}x{k}x{n} p={p} engine bytes != analytic (wa={wa})",
                    cpu.name
                );
            }
        }
    }

    #[test]
    fn zero_problem_reports_zero() {
        let cpu = intel();
        let r = simulate_cake(&cpu, &SimParams::new(0, 128, 128, 2));
        assert_eq!(r.dram_bytes, 0);
        assert_eq!(r.seconds, 0.0);
    }

    #[test]
    fn higher_alpha_cuts_cake_bandwidth_at_fixed_mc() {
        // Eq. 4 at constant mc: BW scales with (alpha+1)/alpha. Hold mc
        // fixed (the L2-bound regime with LLC headroom, AMD's 64 MiB LLC)
        // and widen only nc.
        let cpu = CpuConfig::amd_ryzen_9_5950x();
        let sp = SimParams::square(4608, 8);
        let s1 = cake_core::shape::CbBlockShape::fixed(8, 96, 96, 8 * 96);
        let s4 = cake_core::shape::CbBlockShape::fixed(8, 96, 96, 4 * 8 * 96);
        let b1 = simulate_cake_with_shape(&cpu, &sp, &s1).avg_dram_bw_gbs;
        let b4 = simulate_cake_with_shape(&cpu, &sp, &s4).avg_dram_bw_gbs;
        assert!(b4 < b1, "alpha=4 BW {b4:.2} should be below alpha=1 BW {b1:.2}");
        // Quantitatively: ratio approaches (5/4) / 2 = 0.625 from above.
        assert!((0.55..0.9).contains(&(b4 / b1)), "ratio {}", b4 / b1);
    }

    #[test]
    fn auto_alpha_keeps_cake_within_usable_bandwidth() {
        // The tuner must pick an alpha whose demand fits the machine even
        // on the bandwidth-starved ARM part.
        let cpu = arm();
        let sp = SimParams::square(3000, 4);
        let shape = resolve_cake_shape(&cpu, &sp);
        let rep = simulate_cake_with_shape(&cpu, &sp, &shape);
        assert!(
            rep.avg_dram_bw_gbs <= cpu.usable_dram_bw_gbs() * 1.05,
            "CAKE demands {:.2} GB/s of usable {:.2}",
            rep.avg_dram_bw_gbs,
            cpu.usable_dram_bw_gbs()
        );
    }
}
