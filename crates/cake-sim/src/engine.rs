//! Discrete-event timing engine for CB-block schedules.
//!
//! Models what the paper's SystemC simulator models (Section 6.2): the
//! timings between external memory, local memory, and cores. The engine
//! works in two passes:
//!
//! 1. **Lowering** ([`lower_cake`] / [`lower_goto`]): walk the *real*
//!    schedule (the K-first snake over `BlockGrid`, or GOTO's
//!    `jc/pc/ic` loop nest) and emit one [`StepLoad`] per CB block /
//!    parallel round, with its exact resource demands: MACs, active
//!    cores, DRAM read/write bytes (adjacency-shared A/B, one final C
//!    write per completed panel, write-allocate factor), and internal
//!    LLC<->core bytes. This pass is pure traffic accounting — both the
//!    event engine and the feature-gated closed-form oracle
//!    (`crate::closed_form`) consume the same loads, so their DRAM byte
//!    totals agree u64-exactly by construction.
//! 2. **Event execution** ([`crate::machine`]): play the loads through a
//!    component machine — shared DRAM channel and LLC port on their own
//!    clock dividers ([`CpuConfig::dram_clock_ghz`] /
//!    [`CpuConfig::llc_clock_ghz`]), a per-stream pack unit enforcing the
//!    Section 4.3 double-buffer look-ahead, per-core compute units, and a
//!    rotation barrier — driven by a min-heap of `(tick, seq, component)`
//!    events. IO/compute overlap is event causality, not a closed-form
//!    `max()`: a step stalls on DRAM only if its read physically hasn't
//!    landed when the cores go idle.
//!
//! Same-tick event ordering is governed by [`SimOptions::tie_break`]:
//! FIFO (deterministic, the reference ordering) or a seeded permutation
//! ([`TieBreak::Fuzzed`]) under which all traffic/result counters must be
//! invariant — [`check_ordering_invariance`] sweeps seeds and reports any
//! divergence with the event trace as a witness.

use cake_core::schedule::{BlockGrid, KFirstSchedule};
use cake_core::shape::CbBlockShape;
use cake_core::tune;
use cake_goto::params::GotoParams;

use crate::config::CpuConfig;
use crate::event::{Clock, TieBreak, TraceEvent};
use crate::machine::{Machine, MachineParams, PortSpec, StepLoad, StreamSpec, StreamStats};
use crate::report::SimReport;

/// Inputs for one simulated GEMM.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Problem extents.
    pub m: usize,
    /// Reduction extent.
    pub k: usize,
    /// Column extent.
    pub n: usize,
    /// Cores to use.
    pub p: usize,
    /// Element size in bytes (4 for the paper's f32 experiments).
    pub elem_bytes: usize,
    /// CB-block aspect factor; `None` = auto-select from DRAM bandwidth
    /// (Section 3.2). Ignored by GOTO.
    pub alpha: Option<f64>,
    /// Override the measured internal-bandwidth curve (used for the
    /// paper's dashed "extrapolated" series, which assume internal
    /// bandwidth keeps growing linearly with cores).
    pub internal_bw_gbs_override: Option<f64>,
    /// Override the LLC size (the extrapolations also assume local memory
    /// grows quadratically with core count).
    pub llc_bytes_override: Option<usize>,
}

impl SimParams {
    /// Square `n x n x n` problem on `p` cores, f32.
    pub fn square(n: usize, p: usize) -> Self {
        Self::new(n, n, n, p)
    }

    /// General `m x k x n` problem on `p` cores, f32.
    pub fn new(m: usize, k: usize, n: usize, p: usize) -> Self {
        Self {
            m,
            k,
            n,
            p,
            elem_bytes: 4,
            alpha: None,
            internal_bw_gbs_override: None,
            llc_bytes_override: None,
        }
    }

    fn llc_bytes(&self, cpu: &CpuConfig) -> usize {
        self.llc_bytes_override.unwrap_or(cpu.llc_bytes)
    }

    fn internal_bw_gbs(&self, cpu: &CpuConfig) -> f64 {
        self.internal_bw_gbs_override
            .unwrap_or_else(|| cpu.internal_bw_gbs(self.p))
    }
}

/// Which schedule to lower and simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// CAKE's K-first CB-block schedule.
    Cake,
    /// The GOTO `jc/pc/ic` loop nest (vendor-library stand-in).
    Goto,
}

impl Algo {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Cake => "CAKE",
            Algo::Goto => "GOTO",
        }
    }
}

/// Knobs of one engine run that are not part of the problem.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Same-tick event ordering policy.
    pub tie_break: TieBreak,
    /// Keep a bounded event trace (returned in panics/witnesses).
    pub trace: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self { tie_break: TieBreak::Fifo, trace: false }
    }
}

/// Resolve the CB shape the CAKE library would use on this CPU, clamped to
/// the problem so small matrices still spread across all cores.
pub fn resolve_cake_shape(cpu: &CpuConfig, sp: &SimParams) -> CbBlockShape {
    let macs = cpu.macs_per_cycle_f32;
    let llc = sp.llc_bytes(cpu);
    let probe = CbBlockShape::derive(sp.p, 1.0, cpu.l2_bytes, llc, sp.elem_bytes, cpu.mr, cpu.nr);
    let alpha = sp.alpha.unwrap_or_else(|| {
        tune::select_alpha(cpu.dram_bw_gbs, probe.mc, macs, sp.elem_bytes, cpu.freq_ghz)
    });
    let shape = CbBlockShape::derive(sp.p, alpha, cpu.l2_bytes, llc, sp.elem_bytes, cpu.mr, cpu.nr);

    // Clamp to the problem (mirrors `cake_core::api`), balancing mc so the
    // final M-block is not ragged.
    let strip = sp.m.div_ceil(sp.p).div_ceil(cpu.mr).max(1) * cpu.mr;
    let mc = CbBlockShape::balance_mc(sp.m, sp.p, shape.mc.min(strip).max(cpu.mr), cpu.mr);
    let kc = shape.kc.min(sp.k.max(1));
    let nc = shape.nc.min(sp.n.div_ceil(cpu.nr).max(1) * cpu.nr).max(cpu.nr);
    CbBlockShape::fixed(sp.p, mc, kc, nc)
}

/// Resolve the GOTO blocking for this CPU.
pub fn resolve_goto_params(cpu: &CpuConfig, sp: &SimParams) -> GotoParams {
    let g = GotoParams::derive(
        sp.p,
        cpu.l2_bytes,
        sp.llc_bytes(cpu),
        sp.elem_bytes,
        cpu.mr,
        cpu.nr,
    );
    // Clamp like the library would for small problems.
    let mc = g.mc.min(sp.m.div_ceil(cpu.mr).max(1) * cpu.mr);
    let kc = g.kc.min(sp.k.max(1));
    let nc = g.nc.min(sp.n.div_ceil(cpu.nr).max(1) * cpu.nr).max(cpu.nr);
    GotoParams::fixed(sp.p, mc.max(cpu.mr), kc, nc)
}

/// Lower a CAKE run to per-block [`StepLoad`]s along the K-first snake:
/// adjacency-shared A/B surfaces, partial C held in the LLC and written to
/// DRAM once per completed `(m, n)` panel (with the write-allocate
/// factor), internal traffic per Eq. 3 / Eq. 6.
pub fn lower_cake(cpu: &CpuConfig, sp: &SimParams, shape: &CbBlockShape) -> Vec<StepLoad> {
    let (m, k, n) = (sp.m, sp.k, sp.n);
    if m == 0 || k == 0 || n == 0 {
        return Vec::new();
    }
    let (bm, bk, bn) = (shape.m_block(), shape.k_block(), shape.n_block());
    let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
    let sched = KFirstSchedule::new(grid, m, n);
    let eb = sp.elem_bytes as u64;
    let wa = if cpu.write_allocate { 2 } else { 1 };
    let kb = grid.kb;

    let mut loads = Vec::with_capacity(grid.mb * grid.kb * grid.nb);
    let mut prev: Option<cake_core::schedule::BlockCoord> = None;
    let mut k_run = 0usize; // visits to the current (m, n) panel
    for c in sched {
        let ml = bm.min(m - c.m * bm);
        let kl = bk.min(k - c.k * bk);
        let nl = bn.min(n - c.n * bn);

        let share_a = prev.is_some_and(|p| p.m == c.m && p.k == c.k);
        let share_b = prev.is_some_and(|p| p.k == c.k && p.n == c.n);
        let prev_panel = prev.map(|p| (p.m, p.n));
        prev = Some(c);

        let mut read = 0u64;
        if !share_a {
            read += (ml * kl) as u64 * eb;
        }
        if !share_b {
            read += (kl * nl) as u64 * eb;
        }
        // Partial C stays in the LLC; written to DRAM once, when the
        // K-reduction for this (m, n) panel completes. K runs are
        // contiguous under the K-first schedule, so the panel completes on
        // its kb-th consecutive visit.
        if prev_panel == Some((c.m, c.n)) {
            k_run += 1;
        } else {
            k_run = 1;
        }
        let write = if k_run == kb {
            // Completed panel written once; write-allocate parts read the
            // destination lines first.
            (ml * nl) as u64 * eb * wa
        } else {
            0
        };

        loads.push(StepLoad {
            macs: (ml * kl * nl) as u64,
            active: ml.div_ceil(shape.mc).min(shape.p),
            ext_read_bytes: read,
            ext_write_bytes: write,
            // Internal traffic: read A + B once, read + write the partial
            // C panel (Eq. 3 / Eq. 6).
            int_bytes: ((ml * kl) + (kl * nl) + 2 * (ml * nl)) as u64 * eb,
        });
    }
    loads
}

/// Lower a GOTO run to per-round [`StepLoad`]s: B packed once per
/// `(jc, pc)` panel, partial C streamed to DRAM every round (read back
/// after the first K panel).
pub fn lower_goto(cpu: &CpuConfig, sp: &SimParams, g: &GotoParams) -> Vec<StepLoad> {
    let (m, k, n) = (sp.m, sp.k, sp.n);
    if m == 0 || k == 0 || n == 0 {
        return Vec::new();
    }
    let eb = sp.elem_bytes as u64;
    let wa = if cpu.write_allocate { 2 } else { 1 };
    let (mc, kc, nc, p) = (g.mc, g.kc, g.nc, g.p);
    let kb = k.div_ceil(kc);

    let mut loads = Vec::new();
    let mut jc = 0;
    while jc < n {
        let nl = nc.min(n - jc);
        for pc_idx in 0..kb {
            let kl = kc.min(k - pc_idx * kc);
            let mut b_pending = (kl * nl) as u64 * eb; // B packed once per (jc, pc)
            // Parallel rounds over ic strips.
            let mut ic = 0;
            while ic < m {
                let round_m = (p * mc).min(m - ic);
                let active = round_m.div_ceil(mc);
                let a_bytes = (round_m * kl) as u64 * eb;
                let c_panel = (round_m * nl) as u64 * eb;
                // C streams: read previous partials (after the first k
                // panel), write partials/finals every round.
                let c_reads = if pc_idx > 0 { c_panel } else { 0 };
                let c_writes = c_panel * wa;
                loads.push(StepLoad {
                    macs: (round_m * kl * nl) as u64,
                    active,
                    ext_read_bytes: a_bytes + b_pending + c_reads,
                    ext_write_bytes: c_writes,
                    int_bytes: a_bytes + (kl * nl) as u64 * eb + 2 * c_panel,
                });
                b_pending = 0;
                ic += p * mc;
            }
        }
        jc += nc;
    }
    loads
}

/// Machine characteristics for one run: ports sized from the CPU's
/// bandwidth figures, clock dividers from its Table-2 clock domains.
fn machine_params(cpu: &CpuConfig, sp: &SimParams) -> MachineParams {
    MachineParams {
        freq_ghz: cpu.freq_ghz,
        macs_per_cycle: cpu.macs_per_cycle_f32,
        dram: PortSpec::from_bandwidth(
            cpu.usable_dram_bw_gbs(),
            cpu.freq_ghz,
            Clock::from_ratio(cpu.freq_ghz, cpu.dram_clock_ghz),
        ),
        llc: PortSpec::from_bandwidth(
            sp.internal_bw_gbs(cpu),
            cpu.freq_ghz,
            Clock::from_ratio(cpu.freq_ghz, cpu.llc_clock_ghz),
        ),
        pack_clock: Clock::new(1),
    }
}

fn report_from_stats(
    cpu: &CpuConfig,
    sp: &SimParams,
    algo: Algo,
    stats: &StreamStats,
    seconds_ticks: u64,
    events: u64,
) -> SimReport {
    let freq_hz = cpu.freq_ghz * 1e9;
    let seconds = seconds_ticks as f64 / freq_hz;
    let flops = 2.0 * sp.m as f64 * sp.k as f64 * sp.n as f64;
    let dram_bytes = stats.dram_bytes();
    SimReport {
        cpu: cpu.name.clone(),
        algo: algo.name().into(),
        p: sp.p,
        m: sp.m,
        k: sp.k,
        n: sp.n,
        seconds,
        gflops: if seconds > 0.0 { flops / seconds / 1e9 } else { 0.0 },
        dram_bytes,
        avg_dram_bw_gbs: if seconds > 0.0 { dram_bytes as f64 / seconds / 1e9 } else { 0.0 },
        dram_stall_seconds: stats.dram_wait_ticks as f64 / freq_hz,
        internal_stall_seconds: stats.int_excess_ticks as f64 / freq_hz,
        steps: stats.steps,
        macs: stats.macs,
        int_bytes: stats.int_bytes,
        events,
        engine: "event".into(),
    }
}

/// Run one lowered schedule on the event machine.
fn run_single(cpu: &CpuConfig, sp: &SimParams, algo: Algo, loads: Vec<StepLoad>, opts: SimOptions) -> SimReport {
    let machine = Machine::new(
        machine_params(cpu, sp),
        vec![StreamSpec { loads, cores: sp.p.max(1) }],
        opts.tie_break,
        opts.trace,
    );
    let run = machine.run();
    report_from_stats(cpu, sp, algo, &run.streams[0], run.ticks, run.events)
}

/// Simulate a CAKE GEMM on `cpu`.
// audit: cold offline simulation tool, never on the GEMM warm path
pub fn simulate_cake(cpu: &CpuConfig, sp: &SimParams) -> SimReport {
    let shape = resolve_cake_shape(cpu, sp);
    simulate_cake_with_shape(cpu, sp, &shape)
}

/// Simulate a CAKE GEMM with an explicit CB shape (ablations).
pub fn simulate_cake_with_shape(cpu: &CpuConfig, sp: &SimParams, shape: &CbBlockShape) -> SimReport {
    simulate_cake_with_shape_opts(cpu, sp, shape, SimOptions::default())
}

/// [`simulate_cake_with_shape`] with explicit engine options.
pub fn simulate_cake_with_shape_opts(
    cpu: &CpuConfig,
    sp: &SimParams,
    shape: &CbBlockShape,
    opts: SimOptions,
) -> SimReport {
    run_single(cpu, sp, Algo::Cake, lower_cake(cpu, sp, shape), opts)
}

/// Simulate a GOTO GEMM on `cpu`.
pub fn simulate_goto(cpu: &CpuConfig, sp: &SimParams) -> SimReport {
    let params = resolve_goto_params(cpu, sp);
    simulate_goto_with_params(cpu, sp, &params)
}

/// Simulate a GOTO GEMM with explicit blocking (ablations).
pub fn simulate_goto_with_params(cpu: &CpuConfig, sp: &SimParams, g: &GotoParams) -> SimReport {
    simulate_goto_with_params_opts(cpu, sp, g, SimOptions::default())
}

/// [`simulate_goto_with_params`] with explicit engine options.
pub fn simulate_goto_with_params_opts(
    cpu: &CpuConfig,
    sp: &SimParams,
    g: &GotoParams,
    opts: SimOptions,
) -> SimReport {
    run_single(cpu, sp, Algo::Goto, lower_goto(cpu, sp, g), opts)
}

/// Simulate `algo` with the auto-resolved blocking and explicit options.
pub fn simulate_opts(cpu: &CpuConfig, sp: &SimParams, algo: Algo, opts: SimOptions) -> SimReport {
    match algo {
        Algo::Cake => {
            let shape = resolve_cake_shape(cpu, sp);
            simulate_cake_with_shape_opts(cpu, sp, &shape, opts)
        }
        Algo::Goto => {
            let g = resolve_goto_params(cpu, sp);
            simulate_goto_with_params_opts(cpu, sp, &g, opts)
        }
    }
}

/// Like [`simulate_opts`] but with tracing forced on, returning the
/// bounded event trace alongside the report (`cakectl sim --trace`).
pub fn simulate_traced(
    cpu: &CpuConfig,
    sp: &SimParams,
    algo: Algo,
    opts: SimOptions,
) -> (SimReport, Vec<TraceEvent>) {
    let loads = match algo {
        Algo::Cake => {
            let shape = resolve_cake_shape(cpu, sp);
            lower_cake(cpu, sp, &shape)
        }
        Algo::Goto => {
            let g = resolve_goto_params(cpu, sp);
            lower_goto(cpu, sp, &g)
        }
    };
    let run = Machine::new(
        machine_params(cpu, sp),
        vec![StreamSpec { loads, cores: sp.p.max(1) }],
        opts.tie_break,
        true,
    )
    .run();
    let rep = report_from_stats(cpu, sp, algo, &run.streams[0], run.ticks, run.events);
    (rep, run.trace)
}

/// Outcome of a shared-LLC contention run: two (or more) concurrent GEMMs
/// interleaving on one memory hierarchy.
#[derive(Debug, Clone)]
pub struct SharedLlcReport {
    /// Per-tenant reports; `seconds` is each tenant's own finish time.
    pub tenants: Vec<SimReport>,
    /// Time until the whole machine drained, seconds.
    pub makespan_seconds: f64,
    /// Events processed by the shared machine.
    pub events: u64,
}

/// Simulate concurrent CAKE GEMMs sharing one LLC and DRAM channel.
///
/// Each tenant gets its own core set (`sp.p`) and an even share of the LLC
/// for shape resolution (unless it already overrides `llc_bytes`), but the
/// DRAM channel and LLC port are *one component each* — tenants' IO jobs
/// queue against each other, which is exactly the contention the
/// fixed-pipeline engine could not express.
pub fn simulate_shared_llc(cpu: &CpuConfig, tenants: &[SimParams], opts: SimOptions) -> SharedLlcReport {
    assert!(!tenants.is_empty(), "shared-LLC scenario needs at least one tenant");
    let share = (cpu.llc_bytes / tenants.len()).max(1);
    let resolved: Vec<SimParams> = tenants
        .iter()
        .map(|sp| {
            let mut sp = sp.clone();
            sp.llc_bytes_override = Some(sp.llc_bytes_override.unwrap_or(share));
            sp
        })
        .collect();
    // Port bandwidths come from the total active core count.
    let total_p: usize = resolved.iter().map(|sp| sp.p).sum();
    let mut bw_sp = resolved[0].clone();
    bw_sp.p = total_p;
    let params = machine_params(cpu, &bw_sp);

    let specs: Vec<StreamSpec> = resolved
        .iter()
        .map(|sp| {
            let shape = resolve_cake_shape(cpu, sp);
            StreamSpec { loads: lower_cake(cpu, sp, &shape), cores: sp.p.max(1) }
        })
        .collect();
    let run = Machine::new(params, specs, opts.tie_break, opts.trace).run();
    let tenants_out = resolved
        .iter()
        .zip(&run.streams)
        .map(|(sp, st)| report_from_stats(cpu, sp, Algo::Cake, st, st.finish_tick, run.events))
        .collect();
    SharedLlcReport {
        tenants: tenants_out,
        makespan_seconds: run.ticks as f64 / (cpu.freq_ghz * 1e9),
        events: run.events,
    }
}

/// A schedule race caught by the fuzzed-ordering sweep: a counter that
/// should be ordering-invariant diverged under some same-tick permutation.
#[derive(Debug, Clone)]
pub struct OrderingDivergence {
    /// Seed of the permutation that diverged.
    pub seed: u64,
    /// Which counter diverged.
    pub field: &'static str,
    /// Counter value under the FIFO reference ordering.
    pub baseline: u64,
    /// Counter value under the fuzzed ordering.
    pub fuzzed: u64,
    /// Event trace of the diverging run (the witness).
    pub witness: Vec<TraceEvent>,
}

impl std::fmt::Display for OrderingDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ordering divergence under seed {}: {} = {} (fifo) vs {} (fuzzed); witness:",
            self.seed, self.field, self.baseline, self.fuzzed
        )?;
        for ev in &self.witness {
            writeln!(f, "  {ev}")?;
        }
        Ok(())
    }
}

fn counter_fields(rep: &SimReport) -> [(&'static str, u64); 4] {
    [
        ("dram_bytes", rep.dram_bytes),
        ("int_bytes", rep.int_bytes),
        ("macs", rep.macs),
        ("steps", rep.steps as u64),
    ]
}

/// Sweep `seeds` fuzzed same-tick orderings of one simulation and check
/// every traffic/result counter against the FIFO reference. Returns the
/// number of orderings checked, or the first divergence (with the event
/// trace of a traced re-run as witness) — which would demonstrate a
/// schedule race in the engine.
pub fn check_ordering_invariance(
    cpu: &CpuConfig,
    sp: &SimParams,
    algo: Algo,
    seeds: u64,
) -> Result<u64, Box<OrderingDivergence>> {
    let base = simulate_opts(cpu, sp, algo, SimOptions::default());
    for seed in 0..seeds {
        let opts = SimOptions { tie_break: TieBreak::Fuzzed { seed }, trace: false };
        let fz = simulate_opts(cpu, sp, algo, opts);
        for ((field, b), (_, f)) in counter_fields(&base).iter().zip(counter_fields(&fz).iter()) {
            if b != f {
                // Re-run the diverging seed with tracing for the witness.
                return Err(Box::new(OrderingDivergence {
                    seed,
                    field,
                    baseline: *b,
                    fuzzed: *f,
                    witness: trace_of(cpu, sp, algo, seed),
                }));
            }
        }
    }
    Ok(seeds)
}

/// Event trace of one fuzzed run (used for divergence witnesses).
fn trace_of(cpu: &CpuConfig, sp: &SimParams, algo: Algo, seed: u64) -> Vec<TraceEvent> {
    let opts = SimOptions { tie_break: TieBreak::Fuzzed { seed }, trace: true };
    simulate_traced(cpu, sp, algo, opts).1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intel() -> CpuConfig {
        CpuConfig::intel_i9_10900k()
    }
    fn arm() -> CpuConfig {
        CpuConfig::arm_cortex_a53()
    }

    #[test]
    fn cake_dram_bw_flat_in_cores_fig10a() {
        let cpu = intel();
        let bw: Vec<f64> = (1..=10)
            .map(|p| simulate_cake(&cpu, &SimParams::square(4608, p)).avg_dram_bw_gbs)
            .collect();
        // CAKE's average DRAM bandwidth must stay in a narrow band while
        // core count grows 10x (paper: "does not need to increase DRAM
        // bandwidth to utilize more cores").
        let lo = bw.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = bw.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo < 2.0, "CAKE BW varied too much: {bw:?}");
        // And stays far below the 40 GB/s the machine offers.
        assert!(hi < 20.0, "CAKE BW should be modest, got {hi}");
    }

    #[test]
    fn goto_dram_bw_grows_with_cores_fig10a() {
        let cpu = intel();
        let bw1 = simulate_goto(&cpu, &SimParams::square(4608, 1)).avg_dram_bw_gbs;
        let bw10 = simulate_goto(&cpu, &SimParams::square(4608, 10)).avg_dram_bw_gbs;
        assert!(
            bw10 > 3.0 * bw1,
            "GOTO BW must grow with p: {bw1:.2} -> {bw10:.2}"
        );
    }

    #[test]
    fn cake_and_goto_throughput_comparable_on_intel_fig10b() {
        // Paper: CAKE within ~3-10% of MKL on the Intel part for large MM.
        let cpu = intel();
        let c = simulate_cake(&cpu, &SimParams::square(4608, 10));
        let g = simulate_goto(&cpu, &SimParams::square(4608, 10));
        let ratio = c.gflops / g.gflops;
        assert!(
            (0.8..=1.6).contains(&ratio),
            "CAKE/GOTO = {ratio:.2} (cake {:.0}, goto {:.0})",
            c.gflops,
            g.gflops
        );
    }

    #[test]
    fn arm_goto_is_bandwidth_starved_fig11() {
        // Paper: on the ARM part ARMPL cannot scale - DRAM BW (2 GB/s) is
        // the binding constraint - while CAKE keeps scaling.
        let cpu = arm();
        let c4 = simulate_cake(&cpu, &SimParams::square(3000, 4));
        let g4 = simulate_goto(&cpu, &SimParams::square(3000, 4));
        assert!(
            c4.gflops > 1.3 * g4.gflops,
            "CAKE {:.2} should clearly beat GOTO {:.2} on ARM",
            c4.gflops,
            g4.gflops
        );
        // GOTO is DRAM-stalled a significant fraction of the time.
        assert!(g4.dram_stall_fraction() > 0.25, "{}", g4.dram_stall_fraction());
    }

    #[test]
    fn cake_speedup_scales_on_arm_fig9b() {
        let cpu = arm();
        let t1 = simulate_cake(&cpu, &SimParams::square(3000, 1)).gflops;
        let t4 = simulate_cake(&cpu, &SimParams::square(3000, 4)).gflops;
        let speedup = t4 / t1;
        assert!(speedup > 2.2, "CAKE ARM speedup {speedup:.2}");
        // GOTO's speedup must be visibly worse.
        let g1 = simulate_goto(&cpu, &SimParams::square(3000, 1)).gflops;
        let g4 = simulate_goto(&cpu, &SimParams::square(3000, 4)).gflops;
        assert!(t4 / t1 > g4 / g1, "cake {speedup:.2} vs goto {:.2}", g4 / g1);
    }

    #[test]
    fn internal_bw_override_extends_scaling() {
        // With the measured (saturating) curve, Intel CAKE throughput at
        // 10 cores trails the idealized linear-internal-bandwidth case.
        let cpu = intel();
        let measured = simulate_cake(&cpu, &SimParams::square(4608, 10));
        let mut sp = SimParams::square(4608, 10);
        sp.internal_bw_gbs_override = Some(cpu.internal_bw.extrapolated(10));
        let ideal = simulate_cake(&cpu, &sp);
        assert!(ideal.gflops >= measured.gflops);
    }

    #[test]
    fn traffic_roughly_matches_analytic_model() {
        // Engine DRAM traffic vs cake_core::traffic for the same shape.
        use cake_core::traffic::{dram_traffic, CResidency, TrafficParams};
        let cpu = intel();
        let sp = SimParams::square(2304, 4);
        let shape = resolve_cake_shape(&cpu, &sp);
        let rep = simulate_cake_with_shape(&cpu, &sp, &shape);

        let tp = TrafficParams {
            m: sp.m,
            k: sp.k,
            n: sp.n,
            bm: shape.m_block(),
            bk: shape.k_block(),
            bn: shape.n_block(),
        };
        let grid = BlockGrid::for_problem(sp.m, sp.k, sp.n, tp.bm, tp.bk, tp.bn);
        let t = dram_traffic(KFirstSchedule::new(grid, sp.m, sp.n), tp, CResidency::HoldInLlc);
        let analytic = t.total_bytes(4);
        let ratio = rep.dram_bytes as f64 / analytic as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "engine {} vs analytic {analytic} (ratio {ratio:.3})",
            rep.dram_bytes
        );
    }

    #[test]
    fn traffic_exactly_matches_analytic_model_on_kfirst_schedules() {
        // Stronger than the ratio check above: for K-first schedules the
        // lowering's per-block accounting (adjacency-shared A/B, one final
        // C write per completed panel, write-allocate factor) is the *same
        // function* as cake_core::traffic — so the byte totals must be
        // u64-equal, ragged edges and all, on both write-allocate settings.
        use cake_core::traffic::{dram_traffic, CResidency, TrafficParams};
        for cpu in [intel(), arm()] {
            let wa: u64 = if cpu.write_allocate { 2 } else { 1 };
            for (m, k, n, p, mc, kc, nc) in
                [(48, 24, 48, 4, 4, 8, 16), (50, 23, 41, 2, 8, 8, 24), (16, 64, 16, 1, 16, 16, 16)]
            {
                let sp = SimParams::new(m, k, n, p);
                let shape = cake_core::shape::CbBlockShape::fixed(p, mc, kc, nc);
                let rep = simulate_cake_with_shape(&cpu, &sp, &shape);

                let tp = TrafficParams {
                    m,
                    k,
                    n,
                    bm: shape.m_block(),
                    bk: shape.k_block(),
                    bn: shape.n_block(),
                };
                let grid = BlockGrid::for_problem(m, k, n, tp.bm, tp.bk, tp.bn);
                let t = dram_traffic(KFirstSchedule::new(grid, m, n), tp, CResidency::HoldInLlc);
                let analytic = (t.a_loads + t.b_loads + t.c_final_writes * wa)
                    * sp.elem_bytes as u64;
                assert_eq!(
                    rep.dram_bytes, analytic,
                    "{}: {m}x{k}x{n} p={p} engine bytes != analytic (wa={wa})",
                    cpu.name
                );
            }
        }
    }

    #[test]
    fn zero_problem_reports_zero() {
        let cpu = intel();
        let r = simulate_cake(&cpu, &SimParams::new(0, 128, 128, 2));
        assert_eq!(r.dram_bytes, 0);
        assert_eq!(r.seconds, 0.0);
        assert_eq!(r.events, 0);
    }

    #[test]
    fn higher_alpha_cuts_cake_bandwidth_at_fixed_mc() {
        // Eq. 4 at constant mc: BW scales with (alpha+1)/alpha. Hold mc
        // fixed (the L2-bound regime with LLC headroom, AMD's 64 MiB LLC)
        // and widen only nc.
        let cpu = CpuConfig::amd_ryzen_9_5950x();
        let sp = SimParams::square(4608, 8);
        let s1 = cake_core::shape::CbBlockShape::fixed(8, 96, 96, 8 * 96);
        let s4 = cake_core::shape::CbBlockShape::fixed(8, 96, 96, 4 * 8 * 96);
        let b1 = simulate_cake_with_shape(&cpu, &sp, &s1).avg_dram_bw_gbs;
        let b4 = simulate_cake_with_shape(&cpu, &sp, &s4).avg_dram_bw_gbs;
        assert!(b4 < b1, "alpha=4 BW {b4:.2} should be below alpha=1 BW {b1:.2}");
        // Quantitatively: ratio approaches (5/4) / 2 = 0.625 from above.
        assert!((0.55..0.9).contains(&(b4 / b1)), "ratio {}", b4 / b1);
    }

    #[test]
    fn auto_alpha_keeps_cake_within_usable_bandwidth() {
        // The tuner must pick an alpha whose demand fits the machine even
        // on the bandwidth-starved ARM part.
        let cpu = arm();
        let sp = SimParams::square(3000, 4);
        let shape = resolve_cake_shape(&cpu, &sp);
        let rep = simulate_cake_with_shape(&cpu, &sp, &shape);
        assert!(
            rep.avg_dram_bw_gbs <= cpu.usable_dram_bw_gbs() * 1.05,
            "CAKE demands {:.2} GB/s of usable {:.2}",
            rep.avg_dram_bw_gbs,
            cpu.usable_dram_bw_gbs()
        );
    }

    #[test]
    fn fuzzed_orderings_leave_counters_invariant() {
        // The engine-level race check on a ragged multi-core problem.
        let cpu = intel();
        let sp = SimParams::new(300, 200, 280, 4);
        for algo in [Algo::Cake, Algo::Goto] {
            let checked = check_ordering_invariance(&cpu, &sp, algo, 16)
                .unwrap_or_else(|d| panic!("{algo:?}: {d}"));
            assert_eq!(checked, 16);
        }
    }

    #[test]
    fn same_options_give_bit_identical_reports() {
        let cpu = arm();
        let sp = SimParams::square(500, 4);
        let a = simulate_opts(&cpu, &sp, Algo::Cake, SimOptions::default());
        let b = simulate_opts(&cpu, &sp, Algo::Cake, SimOptions::default());
        assert_eq!(a, b);
        let opts = SimOptions { tie_break: TieBreak::Fuzzed { seed: 7 }, trace: false };
        let f1 = simulate_opts(&cpu, &sp, Algo::Cake, opts);
        let f2 = simulate_opts(&cpu, &sp, Algo::Cake, opts);
        assert_eq!(f1, f2);
    }

    #[test]
    fn shared_llc_contention_slows_tenants_but_keeps_traffic() {
        let cpu = intel();
        let sp = SimParams::square(768, 4);
        // Solo run with the same half-LLC shape a tenant would get.
        let solo = simulate_shared_llc(&cpu, std::slice::from_ref(&sp), SimOptions::default());
        let both = simulate_shared_llc(&cpu, &[sp.clone(), sp], SimOptions::default());
        assert_eq!(solo.tenants[0].dram_bytes, both.tenants[0].dram_bytes);
        assert_eq!(solo.tenants[0].dram_bytes, both.tenants[1].dram_bytes);
        // Two tenants on one channel cannot finish faster than one.
        assert!(both.makespan_seconds >= solo.makespan_seconds);
        assert!(both.events > solo.events);
    }
}
