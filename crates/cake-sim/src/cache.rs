//! Variable-object-size LRU caches and an inclusive-path cache hierarchy.
//!
//! The paper's Figure 7 profiles *where memory requests are served from*
//! (L1 / L2 / L3 / DRAM) for CAKE vs the vendor library. We reproduce the
//! mechanism with an object-granular cache model: the units cached are the
//! packed slivers and register tiles the kernels actually touch (a few KiB
//! each), which is the granularity the paper's own packet-based simulator
//! used.
//!
//! [`LruCache`] evicts least-recently-used objects until a new object
//! fits; [`Hierarchy`] models per-core L1 and L2 plus a shared LLC with
//! allocate-on-miss along the whole path, dirty tracking at the LLC, and
//! per-level hit counters.

use std::collections::{BTreeMap, HashMap};

/// A byte-capacity LRU cache over variably sized objects.
#[derive(Debug)]
pub struct LruCache {
    capacity: u64,
    used: u64,
    clock: u64,
    /// key -> (stamp, size, dirty)
    map: HashMap<u64, (u64, u64, bool)>,
    /// stamp -> key (unique stamps make this a total recency order)
    order: BTreeMap<u64, u64>,
}

/// An object evicted from a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Object key.
    pub key: u64,
    /// Object size in bytes.
    pub bytes: u64,
    /// Whether the object had been written.
    pub dirty: bool,
}

impl LruCache {
    /// An empty cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            clock: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `true` if `key` is resident (does not touch recency).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Look up `key`; on hit, refresh recency (and dirty bit if `write`).
    pub fn touch(&mut self, key: u64, write: bool) -> bool {
        let Some(&(old_stamp, size, dirty)) = self.map.get(&key) else {
            return false;
        };
        self.order.remove(&old_stamp);
        self.clock += 1;
        let stamp = self.clock;
        self.order.insert(stamp, key);
        self.map.insert(key, (stamp, size, dirty || write));
        true
    }

    /// Insert `key` (must not be resident), evicting LRU objects as needed.
    /// Returns the evicted objects, oldest first.
    ///
    /// Objects larger than the whole cache are admitted transiently: they
    /// evict everything and are immediately evicted on the next insert —
    /// matching streaming behaviour through an undersized cache.
    pub fn insert(&mut self, key: u64, bytes: u64, dirty: bool) -> Vec<Evicted> {
        debug_assert!(!self.contains(key), "insert of resident key {key}");
        let mut evicted = Vec::new();
        while self.used + bytes > self.capacity && !self.map.is_empty() {
            let (&stamp, &victim) = self.order.iter().next().expect("order non-empty");
            self.order.remove(&stamp);
            let (_, vbytes, vdirty) = self.map.remove(&victim).expect("map in sync");
            self.used -= vbytes;
            evicted.push(Evicted {
                key: victim,
                bytes: vbytes,
                dirty: vdirty,
            });
        }
        self.clock += 1;
        self.order.insert(self.clock, key);
        self.map.insert(key, (self.clock, bytes, dirty));
        self.used += bytes;
        evicted
    }

    /// Remove `key` if resident, returning its record.
    pub fn invalidate(&mut self, key: u64) -> Option<Evicted> {
        let (stamp, bytes, dirty) = self.map.remove(&key)?;
        self.order.remove(&stamp);
        self.used -= bytes;
        Some(Evicted { key, bytes, dirty })
    }
}

/// Per-level hit/traffic counters for a [`Hierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierStats {
    /// Requests served by a core's L1.
    pub l1_hits: u64,
    /// Requests served by a core's L2.
    pub l2_hits: u64,
    /// Requests served by the shared LLC.
    pub llc_hits: u64,
    /// Requests that went to DRAM.
    pub dram_accesses: u64,
    /// Bytes fetched from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written back to DRAM (dirty LLC evictions).
    pub dram_writeback_bytes: u64,
    /// Total requests issued.
    pub accesses: u64,
}

impl HierStats {
    /// Requests served anywhere in local memory.
    pub fn local_hits(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.llc_hits
    }

    /// Total DRAM traffic (reads + writebacks).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_writeback_bytes
    }
}

/// A two-private-levels-plus-shared-LLC cache hierarchy (Figure 1).
#[derive(Debug)]
pub struct Hierarchy {
    l1: Vec<LruCache>,
    l2: Vec<LruCache>,
    llc: LruCache,
    /// Counters, readable at any time.
    pub stats: HierStats,
}

impl Hierarchy {
    /// Build a hierarchy with `cores` private L1/L2 pairs and one LLC.
    pub fn new(cores: usize, l1_bytes: u64, l2_bytes: u64, llc_bytes: u64) -> Self {
        assert!(cores > 0);
        Self {
            l1: (0..cores).map(|_| LruCache::new(l1_bytes)).collect(),
            l2: (0..cores).map(|_| LruCache::new(l2_bytes)).collect(),
            llc: LruCache::new(llc_bytes),
            stats: HierStats::default(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Issue one request from `core` for object `key` of `bytes`.
    ///
    /// Returns the level that served it: 0 = L1, 1 = L2, 2 = LLC, 3 = DRAM.
    pub fn access(&mut self, core: usize, key: u64, bytes: u64, write: bool) -> usize {
        assert!(core < self.l1.len(), "core {core} out of range");
        self.stats.accesses += 1;

        if self.l1[core].touch(key, write) {
            // Keep the dirty bit authoritative at the LLC so writebacks are
            // counted even when the line never leaves L1 before eviction.
            if write {
                self.llc.touch(key, true);
            }
            self.stats.l1_hits += 1;
            return 0;
        }
        if self.l2[core].touch(key, write) {
            self.fill_l1(core, key, bytes, write);
            if write {
                self.llc.touch(key, true);
            }
            self.stats.l2_hits += 1;
            return 1;
        }
        if self.llc.touch(key, write) {
            self.fill_l2(core, key, bytes);
            self.fill_l1(core, key, bytes, write);
            self.stats.llc_hits += 1;
            return 2;
        }

        // DRAM.
        self.stats.dram_accesses += 1;
        self.stats.dram_read_bytes += bytes;
        for ev in self.llc.insert(key, bytes, write) {
            if ev.dirty {
                self.stats.dram_writeback_bytes += ev.bytes;
            }
        }
        self.fill_l2(core, key, bytes);
        self.fill_l1(core, key, bytes, write);
        3
    }

    fn fill_l1(&mut self, core: usize, key: u64, bytes: u64, write: bool) {
        if !self.l1[core].touch(key, write) {
            let _ = self.l1[core].insert(key, bytes, write);
        }
    }

    fn fill_l2(&mut self, core: usize, key: u64, bytes: u64) {
        if !self.l2[core].touch(key, false) {
            let _ = self.l2[core].insert(key, bytes, false);
        }
    }

    /// Flush the hierarchy, counting remaining dirty LLC objects as
    /// writebacks (end-of-computation drain).
    pub fn flush(&mut self) {
        let keys: Vec<u64> = {
            let mut v = Vec::with_capacity(self.llc.len());
            for (_, &k) in self.llc.order.iter() {
                v.push(k);
            }
            v
        };
        for k in keys {
            if let Some(ev) = self.llc.invalidate(k) {
                if ev.dirty {
                    self.stats.dram_writeback_bytes += ev.bytes;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(100);
        assert!(c.insert(1, 40, false).is_empty());
        assert!(c.touch(1, false));
        assert!(!c.touch(2, false));
        assert_eq!(c.used(), 40);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(100);
        c.insert(1, 40, false);
        c.insert(2, 40, false);
        // Touch 1 so 2 becomes LRU.
        assert!(c.touch(1, false));
        let ev = c.insert(3, 40, false);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].key, 2);
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn dirty_bit_survives_and_reports_on_eviction() {
        let mut c = LruCache::new(64);
        c.insert(7, 64, false);
        c.touch(7, true); // write
        let ev = c.insert(8, 64, false);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].dirty);
    }

    #[test]
    fn oversized_object_streams_through() {
        let mut c = LruCache::new(100);
        c.insert(1, 60, false);
        let ev = c.insert(2, 500, false);
        assert_eq!(ev.len(), 1); // evicted everything resident
        assert!(c.contains(2));
        // Next insert pushes the oversized object out.
        let ev2 = c.insert(3, 10, false);
        assert_eq!(ev2[0].key, 2);
    }

    #[test]
    fn multi_eviction_until_fit() {
        let mut c = LruCache::new(100);
        for k in 0..5 {
            c.insert(k, 20, false);
        }
        let ev = c.insert(99, 90, false);
        assert_eq!(ev.len(), 5); // evicts 0..5 to make room (20*5 used)
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hierarchy_promotes_through_levels() {
        let mut h = Hierarchy::new(2, 64, 128, 1024);
        // First access: DRAM.
        assert_eq!(h.access(0, 1, 32, false), 3);
        // Second from same core: L1.
        assert_eq!(h.access(0, 1, 32, false), 0);
        // Other core: L1/L2 miss, LLC hit.
        assert_eq!(h.access(1, 1, 32, false), 2);
        assert_eq!(h.stats.l1_hits, 1);
        assert_eq!(h.stats.llc_hits, 1);
        assert_eq!(h.stats.dram_accesses, 1);
        assert_eq!(h.stats.accesses, 3);
    }

    #[test]
    fn capacity_pressure_reaches_dram_again() {
        let mut h = Hierarchy::new(1, 32, 64, 128);
        // Fill beyond LLC with distinct objects.
        for k in 0..8 {
            assert_eq!(h.access(0, k, 32, false), 3);
        }
        // Object 0 was evicted from everything.
        assert_eq!(h.access(0, 0, 32, false), 3);
    }

    #[test]
    fn writeback_counted_once_flushed() {
        let mut h = Hierarchy::new(1, 64, 64, 128);
        h.access(0, 5, 64, true); // dirty in LLC
        h.flush();
        assert_eq!(h.stats.dram_writeback_bytes, 64);
        // Flushing twice doesn't double count.
        h.flush();
        assert_eq!(h.stats.dram_writeback_bytes, 64);
    }

    #[test]
    fn l1_write_hit_marks_llc_dirty() {
        let mut h = Hierarchy::new(1, 128, 128, 256);
        h.access(0, 9, 32, false); // clean fill
        h.access(0, 9, 32, true); // L1 write hit
        h.flush();
        assert_eq!(h.stats.dram_writeback_bytes, 32);
    }

    #[test]
    fn stats_totals_consistent() {
        let mut h = Hierarchy::new(2, 64, 128, 512);
        for i in 0..50u64 {
            h.access((i % 2) as usize, i % 7, 16, i % 3 == 0);
        }
        let s = h.stats;
        assert_eq!(s.accesses, 50);
        assert_eq!(s.local_hits() + s.dram_accesses, 50);
    }
}
