//! Discrete-event scheduling core: a min-heap of `(next_tick, seq,
//! component)` wake-ups, per-component clock dividers, seeded tie-break
//! policies, and an event trace for race witnesses.
//!
//! This is the component/clock architecture the timing engine runs on
//! (the min-heap scheduler sketched in the embedded-emulator execution
//! engine and gwr's STEAM time model): every hardware module that evolves
//! over time — the DRAM channel, the LLC port, the pack unit, compute
//! units, the rotation barrier — is a *component* with an id; whenever a
//! component has future work it pushes `(tick, component)` into the global
//! [`EventQueue`], and the engine's main loop repeatedly pops the earliest
//! event and lets that component act.
//!
//! # Tie-break policy
//!
//! Several components routinely wake on the same base tick (e.g. all
//! active cores finishing an evenly-split block at once). Two policies
//! decide the pop order inside one tick:
//!
//! * [`TieBreak::Fifo`] — deterministic: events pop in push (`seq`) order.
//!   This is the engine's default and the order every golden number is
//!   produced under.
//! * [`TieBreak::Fuzzed`] — a seeded permutation of same-tick events
//!   (each event's rank is a splitmix64 hash of `seed ^ seq`). Causality
//!   is still respected — an event can only be reordered against events
//!   at the *same* tick — so any observable divergence in traffic or
//!   result counters under a fuzzed ordering is a schedule race, and the
//!   engine reports it with the event trace as a witness.
//!
//! Different ticks never reorder; the queue is a strict min-heap on
//! `(tick, rank, seq)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Global simulated time, in base clock cycles (core cycles).
pub type Tick = u64;

/// Index of a component registered with the machine.
pub type ComponentId = usize;

/// splitmix64 — the tiny, high-quality mixer used to rank same-tick
/// events under a fuzzed ordering.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How same-tick events are ordered when popped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Deterministic: push (`seq`) order. The reference ordering.
    Fifo,
    /// Seeded permutation of same-tick events; traffic and result
    /// counters must be invariant under every seed (divergence = race).
    Fuzzed {
        /// Permutation seed.
        seed: u64,
    },
}

impl TieBreak {
    #[inline]
    fn rank(&self, seq: u64) -> u64 {
        match *self {
            TieBreak::Fifo => 0,
            TieBreak::Fuzzed { seed } => splitmix64(seed ^ seq),
        }
    }
}

/// One scheduled wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Base-cycle time the component wants to act.
    pub tick: Tick,
    /// Global push sequence number (unique; the deterministic tie-break).
    pub seq: u64,
    /// Component to wake.
    pub comp: ComponentId,
}

/// Min-heap of pending events keyed by `(tick, rank, seq)`.
#[derive(Debug)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Tick, u64, u64, ComponentId)>>,
    policy: TieBreak,
    next_seq: u64,
    pushed: u64,
}

impl EventQueue {
    /// Empty queue with the given tie-break policy.
    pub fn new(policy: TieBreak) -> Self {
        Self {
            heap: BinaryHeap::new(),
            policy,
            next_seq: 0,
            pushed: 0,
        }
    }

    /// Schedule `comp` to wake at `tick`.
    pub fn push(&mut self, tick: Tick, comp: ComponentId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        let rank = self.policy.rank(seq);
        self.heap.push(Reverse((tick, rank, seq, comp)));
    }

    /// Pop the earliest event (same-tick order set by the policy).
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse((tick, _rank, seq, comp))| Event { tick, seq, comp })
    }

    /// Events pushed over the queue's lifetime.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A component's clock relationship to the base (core) clock: the
/// component only acts on ticks that are multiples of `period` base
/// cycles. Derived from the Table-2 clock domains (core vs memory bus vs
/// uncore) — a divided clock quantizes when a slower module can start or
/// finish work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    period: u64,
}

impl Clock {
    /// Clock ticking every `period` base cycles (`period >= 1`).
    pub fn new(period: u64) -> Self {
        Self { period: period.max(1) }
    }

    /// Divider for a component running at `component_ghz` under a
    /// `base_ghz` core clock (rounded to the nearest whole divider).
    pub fn from_ratio(base_ghz: f64, component_ghz: f64) -> Self {
        let ratio = if component_ghz > 0.0 { base_ghz / component_ghz } else { 1.0 };
        Self::new(ratio.round().max(1.0) as u64)
    }

    /// The divider, in base cycles per component tick.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Earliest component tick at or after base tick `t`.
    pub fn align_up(&self, t: Tick) -> Tick {
        t.div_ceil(self.period) * self.period
    }

    /// Duration of `edges` component ticks, in base cycles.
    pub fn span(&self, edges: u64) -> u64 {
        edges * self.period
    }
}

/// One recorded step of the simulation, kept when tracing is enabled and
/// dumped as the witness when a fuzzed ordering diverges.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Base tick the event was processed at.
    pub tick: Tick,
    /// Queue sequence number (total order of the actual run).
    pub seq: u64,
    /// Human-readable component name.
    pub component: &'static str,
    /// What the component did.
    pub detail: String,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[t={:>10} #{:>6}] {:<10} {}", self.tick, self.seq, self.component, self.detail)
    }
}

/// Bounded event trace: keeps the most recent `cap` events (a ring), so a
/// witness stays readable even for million-event runs.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    cap: usize,
    next: usize,
    total: u64,
}

impl Trace {
    /// Trace keeping the last `cap` events.
    pub fn new(cap: usize) -> Self {
        Self { events: Vec::with_capacity(cap.min(4096)), cap: cap.max(1), next: 0, total: 0 }
    }

    /// Record one event.
    pub fn record(&mut self, tick: Tick, seq: u64, component: &'static str, detail: String) {
        self.total += 1;
        let ev = TraceEvent { tick, seq, component, detail };
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Events recorded in chronological order (oldest kept first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        if self.events.len() < self.cap {
            out.extend(self.events.iter().cloned());
        } else {
            out.extend(self.events[self.next..].iter().cloned());
            out.extend(self.events[..self.next].iter().cloned());
        }
        out
    }

    /// Total events seen (including those evicted from the ring).
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders_same_tick_by_seq() {
        let mut q = EventQueue::new(TieBreak::Fifo);
        for comp in [3usize, 1, 2] {
            q.push(10, comp);
        }
        q.push(5, 9);
        let order: Vec<(Tick, ComponentId)> =
            std::iter::from_fn(|| q.pop()).map(|e| (e.tick, e.comp)).collect();
        assert_eq!(order, vec![(5, 9), (10, 3), (10, 1), (10, 2)]);
    }

    #[test]
    fn fuzzed_permutes_within_tick_only() {
        // Across many seeds the same-tick block must see at least one
        // non-FIFO order, while cross-tick order never changes.
        let mut saw_permutation = false;
        for seed in 0..16u64 {
            let mut q = EventQueue::new(TieBreak::Fuzzed { seed });
            q.push(7, 0);
            for comp in [10usize, 11, 12, 13] {
                q.push(20, comp);
            }
            q.push(30, 99);
            let order: Vec<(Tick, ComponentId)> =
                std::iter::from_fn(|| q.pop()).map(|e| (e.tick, e.comp)).collect();
            assert_eq!(order.first(), Some(&(7, 0)), "earliest tick must pop first");
            assert_eq!(order.last(), Some(&(30, 99)), "latest tick must pop last");
            let mid: Vec<ComponentId> = order[1..5].iter().map(|&(_, c)| c).collect();
            let mut sorted = mid.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![10, 11, 12, 13], "no event lost or duplicated");
            if mid != vec![10, 11, 12, 13] {
                saw_permutation = true;
            }
        }
        assert!(saw_permutation, "16 seeds never permuted a 4-event tick");
    }

    #[test]
    fn fuzzed_is_deterministic_per_seed() {
        let run = |seed| {
            let mut q = EventQueue::new(TieBreak::Fuzzed { seed });
            for comp in 0..8usize {
                q.push(4, comp);
            }
            std::iter::from_fn(move || q.pop().map(|e| e.comp)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        // And the seed actually matters for an 8-event tick.
        assert!((0..8).any(|s| run(s) != run(42)), "all seeds produced one order");
    }

    #[test]
    fn clock_alignment_and_ratio() {
        let c = Clock::from_ratio(3.7, 1.4665); // Intel core vs DDR4-2933 bus
        assert_eq!(c.period(), 3);
        assert_eq!(c.align_up(0), 0);
        assert_eq!(c.align_up(1), 3);
        assert_eq!(c.align_up(3), 3);
        assert_eq!(c.align_up(7), 9);
        assert_eq!(c.span(4), 12);
        // Degenerate ratios clamp to a sane divider.
        assert_eq!(Clock::from_ratio(1.0, 4.0).period(), 1);
        assert_eq!(Clock::from_ratio(1.0, 0.0).period(), 1);
    }

    #[test]
    fn trace_ring_keeps_most_recent() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.record(i, i, "core", format!("ev{i}"));
        }
        let evs = t.events();
        assert_eq!(t.total(), 5);
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].detail, "ev2");
        assert_eq!(evs[2].detail, "ev4");
    }
}
