//! Result records produced by the timing engine and consumed by the bench
//! harness (CSV rows, figure series).

/// Outcome of simulating one GEMM on one CPU configuration.
///
/// `PartialEq` is derived so determinism tests can assert bit-identical
/// reports (same engine, same seed ⇒ same floats, exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// CPU name.
    pub cpu: String,
    /// Algorithm ("CAKE" or "GOTO").
    pub algo: String,
    /// Cores used.
    pub p: usize,
    /// Problem extents.
    pub m: usize,
    /// Reduction extent.
    pub k: usize,
    /// Column extent.
    pub n: usize,
    /// Simulated wall time, seconds.
    pub seconds: f64,
    /// Achieved throughput, GFLOP/s.
    pub gflops: f64,
    /// Total DRAM traffic, bytes.
    pub dram_bytes: u64,
    /// Average DRAM bandwidth over the run, GB/s.
    pub avg_dram_bw_gbs: f64,
    /// Seconds the cores were stalled on DRAM (IO time not hidden by
    /// compute).
    pub dram_stall_seconds: f64,
    /// Seconds stalled on local-memory (LLC<->core) bandwidth.
    pub internal_stall_seconds: f64,
    /// Number of blocks / rounds executed.
    pub steps: usize,
    /// MAC operations executed (must equal `m * k * n` for a real run).
    pub macs: u64,
    /// Bytes moved over the internal (LLC<->core) port.
    pub int_bytes: u64,
    /// Discrete events processed (0 for the closed-form oracle).
    pub events: u64,
    /// Engine that produced the report: "event" or "closed-form".
    pub engine: String,
}

impl SimReport {
    /// FLOPs of the simulated problem.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }

    /// Fraction of time lost to DRAM stalls.
    pub fn dram_stall_fraction(&self) -> f64 {
        if self.seconds > 0.0 {
            self.dram_stall_seconds / self.seconds
        } else {
            0.0
        }
    }

    /// CSV header matching [`Self::csv_row`].
    pub fn csv_header() -> &'static str {
        "cpu,algo,p,m,k,n,seconds,gflops,dram_bytes,avg_dram_bw_gbs,dram_stall_s,internal_stall_s,steps,macs,int_bytes,events,engine"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.6e},{:.3},{},{:.4},{:.6e},{:.6e},{},{},{},{},{}",
            self.cpu,
            self.algo,
            self.p,
            self.m,
            self.k,
            self.n,
            self.seconds,
            self.gflops,
            self.dram_bytes,
            self.avg_dram_bw_gbs,
            self.dram_stall_seconds,
            self.internal_stall_seconds,
            self.steps,
            self.macs,
            self.int_bytes,
            self.events,
            self.engine
        )
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<8} p={:<3} {:>6}x{:<6}x{:<6} {:>9.2} GFLOP/s  DRAM {:>7.2} GB/s  stalls dram {:>5.1}% int {:>5.1}%",
            self.algo,
            self.p,
            self.m,
            self.k,
            self.n,
            self.gflops,
            self.avg_dram_bw_gbs,
            100.0 * self.dram_stall_fraction(),
            100.0 * self.internal_stall_seconds / self.seconds.max(1e-30),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            cpu: "Test".into(),
            algo: "CAKE".into(),
            p: 4,
            m: 100,
            k: 100,
            n: 100,
            seconds: 0.5,
            gflops: 4.0,
            dram_bytes: 1_000_000,
            avg_dram_bw_gbs: 0.002,
            dram_stall_seconds: 0.1,
            internal_stall_seconds: 0.05,
            steps: 7,
            macs: 1_000_000,
            int_bytes: 2_000_000,
            events: 42,
            engine: "event".into(),
        }
    }

    #[test]
    fn flops_and_fractions() {
        let r = sample();
        assert_eq!(r.flops(), 2e6);
        assert!((r.dram_stall_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = sample();
        let cols = SimReport::csv_header().split(',').count();
        assert_eq!(r.csv_row().split(',').count(), cols);
    }

    #[test]
    fn clone_preserves_fields() {
        let r = sample();
        let b = r.clone();
        assert_eq!(b.gflops, r.gflops);
        assert_eq!(b.steps, r.steps);
    }
}
