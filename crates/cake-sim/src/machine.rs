//! The simulated machine: hardware components wired to the discrete-event
//! core in [`crate::event`].
//!
//! A [`Machine`] executes one or more *streams* (concurrent GEMMs sharing
//! the memory hierarchy). Each stream is a sequence of [`StepLoad`]s — a
//! CB block for CAKE, a parallel `ic`-round for GOTO — lowered from the
//! real schedule by the engine. The machine then plays the steps through
//! five component kinds, each on its own clock divider:
//!
//! * **DRAM channel** (shared, serial): serves read jobs (next block's
//!   A/B surfaces) and posted write jobs (completed C panels) FIFO at the
//!   memory-bus clock. Two concurrent streams contend here — there is one
//!   queue, not one per tenant.
//! * **LLC port** (shared, serial): streams a step's internal traffic
//!   (packed operands to the cores, partial-C read/write) at the uncore
//!   clock, concurrently with that step's compute.
//! * **Pack unit** (per stream): issues the DRAM read for a future step —
//!   the double-buffer look-ahead. A read for step `s` may only be issued
//!   while `s < completed + 2` (one block computing, one streaming in),
//!   which is exactly the paper's Section 4.3 double-buffer rule as event
//!   causality instead of a closed-form overlap subtraction.
//! * **Compute units** (per stream, one per core): each active core gets
//!   an even share of the step's MACs and wakes when its share is done.
//! * **Barrier** (per stream): the rotation barrier. A step completes one
//!   barrier edge after its last arrival (all active cores + the LLC
//!   port); only then may the next step start computing and the next read
//!   be issued.
//!
//! IO/compute overlap is therefore *emergent*: a step stalls on DRAM only
//! if its read physically has not finished when the cores go idle, and
//! the engine records that wait — it is never assumed away.

use std::collections::VecDeque;

use crate::event::{Clock, ComponentId, EventQueue, TieBreak, Tick, Trace, TraceEvent};

/// One unit of schedule work: a CB block (CAKE) or a parallel round
/// (GOTO), with its resource demands fully resolved by the lowering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepLoad {
    /// Multiply-accumulates in this step.
    pub macs: u64,
    /// Cores that share the MACs.
    pub active: usize,
    /// Bytes read from DRAM before this step can compute (A/B surfaces
    /// not shared with the previous step).
    pub ext_read_bytes: u64,
    /// Bytes written back to DRAM when this step completes (finished C
    /// panel, with the write-allocate factor already applied).
    pub ext_write_bytes: u64,
    /// Bytes over the LLC<->core port during this step's compute.
    pub int_bytes: u64,
}

/// A serial port's service characteristics: its clock divider and how
/// many bytes one component tick moves.
#[derive(Debug, Clone, Copy)]
pub struct PortSpec {
    /// Clock divider relative to the core clock.
    pub clock: Clock,
    /// Bytes served per component tick.
    pub bytes_per_edge: f64,
}

impl PortSpec {
    /// Port moving `bw_gbs` GB/s on a machine whose base clock is
    /// `freq_ghz`, ticking at `clock`.
    pub fn from_bandwidth(bw_gbs: f64, freq_ghz: f64, clock: Clock) -> Self {
        let bytes_per_cycle = bw_gbs / freq_ghz; // GB/s over Gcycle/s
        Self { clock, bytes_per_edge: (bytes_per_cycle * clock.period() as f64).max(1e-30) }
    }

    /// Component ticks needed to move `bytes` (>= 1 for any real job).
    pub fn edges(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            (bytes as f64 / self.bytes_per_edge).ceil().max(1.0) as u64
        }
    }
}

/// Full machine characteristics the engine derives from a `CpuConfig`.
#[derive(Debug, Clone, Copy)]
pub struct MachineParams {
    /// Base (core) clock, GHz — converts ticks to seconds.
    pub freq_ghz: f64,
    /// Sustained MACs per cycle per core.
    pub macs_per_cycle: f64,
    /// External-memory channel.
    pub dram: PortSpec,
    /// LLC<->cores port.
    pub llc: PortSpec,
    /// Pack/issue unit clock (look-ahead dispatch latency).
    pub pack_clock: Clock,
}

/// One stream of work (one GEMM) to run on the machine.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Lowered schedule steps, in execution order.
    pub loads: Vec<StepLoad>,
    /// Compute units dedicated to this stream.
    pub cores: usize,
}

/// Per-stream counters and timing produced by a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    /// Bytes read from DRAM (A/B surfaces).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM (C panels, write-allocate included).
    pub dram_write_bytes: u64,
    /// Bytes moved over the LLC port.
    pub int_bytes: u64,
    /// MAC operations performed.
    pub macs: u64,
    /// Steps completed.
    pub steps: usize,
    /// Base cycles the stream's cores sat idle waiting on DRAM.
    pub dram_wait_ticks: u64,
    /// Base cycles the LLC port kept running past the cores in a step.
    pub int_excess_ticks: u64,
    /// Tick of the stream's last activity (barrier or writeback drain).
    pub finish_tick: Tick,
}

impl StreamStats {
    /// Total DRAM bytes both directions.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Outcome of a machine run.
#[derive(Debug, Clone)]
pub struct MachineRun {
    /// Final simulated time in base cycles (all streams + DRAM drained).
    pub ticks: Tick,
    /// Events processed by the scheduler loop.
    pub events: u64,
    /// Per-stream results, in [`StreamSpec`] order.
    pub streams: Vec<StreamStats>,
    /// Event trace (empty unless tracing was requested).
    pub trace: Vec<TraceEvent>,
}

/// Reads may run at most this many steps ahead of the last completed
/// step: the current block computing plus one streaming in (Section 4.3
/// double buffering).
const READ_AHEAD: usize = 2;

#[derive(Debug, Clone, Copy)]
struct DramJob {
    stream: usize,
    step: usize,
    bytes: u64,
    write: bool,
}

#[derive(Debug, Default)]
struct DramChannel {
    queue: VecDeque<DramJob>,
    busy: bool,
}

#[derive(Debug, Clone, Copy)]
struct LlcJob {
    stream: usize,
    bytes: u64,
}

#[derive(Debug, Default)]
struct LlcPort {
    queue: VecDeque<LlcJob>,
    busy: bool,
}

#[derive(Debug, Default)]
struct PackUnit {
    queue: VecDeque<usize>, // step indices awaiting issue
    busy: bool,
}

#[derive(Debug)]
struct StreamRt {
    spec: StreamSpec,
    next_issue: usize,
    completed: usize,
    io_ready: Vec<bool>,
    inflight: Option<usize>,
    arrivals_left: usize,
    has_int_job: bool,
    cores_done_tick: Tick,
    llc_done_tick: Tick,
    ready_tick: Tick,
    stats: StreamStats,
}

#[derive(Debug, Clone, Copy)]
enum Comp {
    Dram,
    Llc,
    Pack(usize),
    Barrier(usize),
    Core(usize),
}

const DRAM_ID: ComponentId = 0;
const LLC_ID: ComponentId = 1;

/// The machine: shared DRAM/LLC, per-stream pack/cores/barrier, all
/// driven by one [`EventQueue`].
pub struct Machine {
    params: MachineParams,
    queue: EventQueue,
    trace: Option<Trace>,
    comps: Vec<Comp>,
    dram: DramChannel,
    llc: LlcPort,
    packs: Vec<PackUnit>,
    pack_comp: Vec<ComponentId>,
    barrier_comp: Vec<ComponentId>,
    core_comp_base: Vec<ComponentId>,
    streams: Vec<StreamRt>,
    now: Tick,
    last_tick: Tick,
    events: u64,
}

impl Machine {
    /// Build a machine for the given streams.
    pub fn new(params: MachineParams, specs: Vec<StreamSpec>, policy: TieBreak, trace: bool) -> Self {
        let mut comps = vec![Comp::Dram, Comp::Llc];
        let mut pack_comp = Vec::new();
        let mut barrier_comp = Vec::new();
        let mut core_comp_base = Vec::new();
        let mut packs = Vec::new();
        let mut streams = Vec::new();
        for (s, spec) in specs.into_iter().enumerate() {
            pack_comp.push(comps.len());
            comps.push(Comp::Pack(s));
            barrier_comp.push(comps.len());
            comps.push(Comp::Barrier(s));
            core_comp_base.push(comps.len());
            for _ in 0..spec.cores.max(1) {
                comps.push(Comp::Core(s));
            }
            packs.push(PackUnit::default());
            let steps = spec.loads.len();
            streams.push(StreamRt {
                spec,
                next_issue: 0,
                completed: 0,
                io_ready: vec![false; steps],
                inflight: None,
                arrivals_left: 0,
                has_int_job: false,
                cores_done_tick: 0,
                llc_done_tick: 0,
                ready_tick: 0,
                stats: StreamStats::default(),
            });
        }
        Self {
            params,
            queue: EventQueue::new(policy),
            trace: if trace { Some(Trace::new(256)) } else { None },
            comps,
            dram: DramChannel::default(),
            llc: LlcPort::default(),
            packs,
            pack_comp,
            barrier_comp,
            core_comp_base,
            streams,
            now: 0,
            last_tick: 0,
            events: 0,
        }
    }

    fn record(&mut self, seq: u64, component: &'static str, detail: impl FnOnce() -> String) {
        if let Some(t) = self.trace.as_mut() {
            t.record(self.now, seq, component, detail());
        }
    }

    /// Run to completion. Panics with the event trace if the schedule
    /// wedges (a causality bug — the dynamic analogue of a deadlock found
    /// by cake-verify's interleaving DFS).
    pub fn run(mut self) -> MachineRun {
        for s in 0..self.streams.len() {
            self.try_issue(s);
        }
        while let Some(ev) = self.queue.pop() {
            self.now = ev.tick;
            self.last_tick = self.last_tick.max(ev.tick);
            self.events += 1;
            match self.comps[ev.comp] {
                Comp::Dram => self.on_dram(ev.seq),
                Comp::Llc => self.on_llc(ev.seq),
                Comp::Pack(s) => self.on_pack(s, ev.seq),
                Comp::Barrier(s) => self.on_barrier(s, ev.seq),
                Comp::Core(s) => self.on_core(s, ev.seq),
            }
        }
        for (i, st) in self.streams.iter().enumerate() {
            assert!(
                st.completed == st.spec.loads.len() && st.inflight.is_none(),
                "stream {i} wedged at step {}/{} — schedule race; trace:\n{}",
                st.completed,
                st.spec.loads.len(),
                self.trace
                    .as_ref()
                    .map(|t| t
                        .events()
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join("\n"))
                    .unwrap_or_else(|| "(re-run with tracing for a witness)".into()),
            );
        }
        assert!(self.dram.queue.is_empty() && !self.dram.busy, "DRAM jobs left undrained");
        MachineRun {
            ticks: self.last_tick,
            events: self.events,
            streams: self.streams.into_iter().map(|s| s.stats).collect(),
            trace: self.trace.map(|t| t.events()).unwrap_or_default(),
        }
    }

    // --- pack unit: double-buffered read look-ahead --------------------

    fn try_issue(&mut self, s: usize) {
        let st = &mut self.streams[s];
        let mut kicked = false;
        while st.next_issue < st.spec.loads.len() && st.next_issue < st.completed + READ_AHEAD {
            self.packs[s].queue.push_back(st.next_issue);
            st.next_issue += 1;
            kicked = true;
        }
        if kicked {
            self.kick_pack(s);
        }
    }

    fn kick_pack(&mut self, s: usize) {
        if !self.packs[s].busy && !self.packs[s].queue.is_empty() {
            self.packs[s].busy = true;
            let done = self.params.pack_clock.align_up(self.now + 1);
            self.queue.push(done, self.pack_comp[s]);
        }
    }

    fn on_pack(&mut self, s: usize, seq: u64) {
        self.packs[s].busy = false;
        let step = self.packs[s].queue.pop_front().expect("pack event without a job");
        let bytes = self.streams[s].spec.loads[step].ext_read_bytes;
        self.record(seq, "pack", || format!("stream {s} issue read step {step} ({bytes} B)"));
        if bytes > 0 {
            self.dram.queue.push_back(DramJob { stream: s, step, bytes, write: false });
            self.kick_dram();
        } else {
            self.io_done(s, step);
        }
        self.kick_pack(s);
    }

    // --- DRAM channel: shared serial FIFO ------------------------------

    fn kick_dram(&mut self) {
        if !self.dram.busy {
            if let Some(job) = self.dram.queue.front() {
                self.dram.busy = true;
                let edges = self.params.dram.edges(job.bytes);
                let start = self.params.dram.clock.align_up(self.now);
                let done = start + self.params.dram.clock.span(edges);
                self.queue.push(done, DRAM_ID);
            }
        }
    }

    fn on_dram(&mut self, seq: u64) {
        self.dram.busy = false;
        let job = self.dram.queue.pop_front().expect("dram event without a job");
        let st = &mut self.streams[job.stream];
        if job.write {
            st.stats.dram_write_bytes += job.bytes;
        } else {
            st.stats.dram_read_bytes += job.bytes;
        }
        st.stats.finish_tick = st.stats.finish_tick.max(self.now);
        self.record(seq, "dram", || {
            format!(
                "stream {} {} step {} done ({} B)",
                job.stream,
                if job.write { "write" } else { "read" },
                job.step,
                job.bytes
            )
        });
        if !job.write {
            self.io_done(job.stream, job.step);
        }
        self.kick_dram();
    }

    fn io_done(&mut self, s: usize, step: usize) {
        self.streams[s].io_ready[step] = true;
        self.try_start_compute(s);
    }

    // --- compute units + LLC port --------------------------------------

    fn try_start_compute(&mut self, s: usize) {
        let st = &self.streams[s];
        let step = st.completed;
        if st.inflight.is_none() && step < st.spec.loads.len() && st.io_ready[step] {
            self.start_compute(s, step);
        }
    }

    fn start_compute(&mut self, s: usize, step: usize) {
        let ld = self.streams[s].spec.loads[step];
        let cores = self.streams[s].spec.cores.max(1);
        let active = ld.active.clamp(1, cores);
        let st = &mut self.streams[s];
        st.inflight = Some(step);
        st.stats.dram_wait_ticks += self.now - st.ready_tick;
        st.cores_done_tick = 0;
        st.llc_done_tick = 0;
        st.has_int_job = ld.int_bytes > 0;
        st.arrivals_left = active + usize::from(st.has_int_job);
        // Even MAC split with the remainder spread one-per-core, each core
        // waking when its share is done.
        let base = ld.macs / active as u64;
        let rem = (ld.macs % active as u64) as usize;
        for i in 0..active {
            let share = base + u64::from(i < rem);
            let cycles = ((share as f64 / self.params.macs_per_cycle).ceil() as u64).max(1);
            self.queue.push(self.now + cycles, self.core_comp_base[s] + i);
        }
        if ld.int_bytes > 0 {
            self.llc.queue.push_back(LlcJob { stream: s, bytes: ld.int_bytes });
            self.kick_llc();
        }
    }

    fn kick_llc(&mut self) {
        if !self.llc.busy {
            if let Some(job) = self.llc.queue.front() {
                self.llc.busy = true;
                let edges = self.params.llc.edges(job.bytes);
                let start = self.params.llc.clock.align_up(self.now);
                let done = start + self.params.llc.clock.span(edges);
                self.queue.push(done, LLC_ID);
            }
        }
    }

    fn on_llc(&mut self, seq: u64) {
        self.llc.busy = false;
        let job = self.llc.queue.pop_front().expect("llc event without a job");
        let st = &mut self.streams[job.stream];
        st.llc_done_tick = self.now;
        st.stats.int_bytes += job.bytes;
        self.record(seq, "llc", || format!("stream {} int {} B done", job.stream, job.bytes));
        self.arrive(job.stream);
        self.kick_llc();
    }

    fn on_core(&mut self, s: usize, seq: u64) {
        let st = &mut self.streams[s];
        st.cores_done_tick = st.cores_done_tick.max(self.now);
        self.record(seq, "core", || format!("stream {s} core share done"));
        self.arrive(s);
    }

    fn arrive(&mut self, s: usize) {
        let st = &mut self.streams[s];
        debug_assert!(st.arrivals_left > 0, "arrival with no step in flight");
        st.arrivals_left -= 1;
        if st.arrivals_left == 0 {
            // Rotation barrier releases one core-clock edge after the last
            // arrival.
            self.queue.push(self.now + 1, self.barrier_comp[s]);
        }
    }

    fn on_barrier(&mut self, s: usize, seq: u64) {
        let step = self.streams[s].inflight.take().expect("barrier without a step in flight");
        let ld = self.streams[s].spec.loads[step];
        let st = &mut self.streams[s];
        if st.has_int_job {
            st.stats.int_excess_ticks += st.llc_done_tick.saturating_sub(st.cores_done_tick);
        }
        st.completed += 1;
        st.ready_tick = self.now;
        st.stats.steps += 1;
        st.stats.macs += ld.macs;
        st.stats.finish_tick = st.stats.finish_tick.max(self.now);
        self.record(seq, "barrier", || format!("stream {s} step {step} complete"));
        if ld.ext_write_bytes > 0 {
            self.dram.queue.push_back(DramJob {
                stream: s,
                step,
                bytes: ld.ext_write_bytes,
                write: true,
            });
            self.kick_dram();
        }
        self.try_issue(s);
        self.try_start_compute(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams {
            freq_ghz: 1.0,
            macs_per_cycle: 1.0,
            dram: PortSpec { clock: Clock::new(2), bytes_per_edge: 8.0 },
            llc: PortSpec { clock: Clock::new(1), bytes_per_edge: 64.0 },
            pack_clock: Clock::new(1),
        }
    }

    fn step(macs: u64, active: usize, rd: u64, wr: u64, int: u64) -> StepLoad {
        StepLoad { macs, active, ext_read_bytes: rd, ext_write_bytes: wr, int_bytes: int }
    }

    fn run_one(loads: Vec<StepLoad>, cores: usize, policy: TieBreak) -> MachineRun {
        Machine::new(params(), vec![StreamSpec { loads, cores }], policy, false).run()
    }

    #[test]
    fn empty_stream_finishes_at_tick_zero() {
        let run = run_one(vec![], 2, TieBreak::Fifo);
        assert_eq!(run.ticks, 0);
        assert_eq!(run.streams[0].steps, 0);
        assert_eq!(run.streams[0].dram_bytes(), 0);
    }

    #[test]
    fn counters_sum_all_jobs_exactly() {
        let loads = vec![step(100, 2, 64, 0, 32), step(100, 2, 16, 128, 32), step(50, 1, 0, 8, 16)];
        let run = run_one(loads.clone(), 2, TieBreak::Fifo);
        let st = &run.streams[0];
        assert_eq!(st.dram_read_bytes, 80);
        assert_eq!(st.dram_write_bytes, 136);
        assert_eq!(st.int_bytes, 80);
        assert_eq!(st.macs, 250);
        assert_eq!(st.steps, 3);
        assert!(run.ticks > 0 && run.events > 0);
    }

    #[test]
    fn io_overlaps_compute_between_steps() {
        // Two identical steps: with double buffering the second step's read
        // (8k cycles: 32 kB at 4 B/cycle) streams entirely during the first
        // step's 10k-cycle compute, so only the first read is exposed.
        let big = step(10_000, 1, 32_000, 0, 0);
        let run = run_one(vec![big, big], 1, TieBreak::Fifo);
        let serial = 2 * (10_000 + 8_000);
        let pipelined = 8_000 + 2 * 10_000;
        assert!(
            run.ticks < pipelined as u64 + 100,
            "no overlap: {} ticks (serial would be {serial})",
            run.ticks
        );
    }

    #[test]
    fn dram_bound_stream_records_stalls() {
        // Reads far outweigh compute: the cores must wait on the channel
        // most of the time.
        let loads = vec![step(10, 1, 4096, 0, 0); 8];
        let run = run_one(loads, 1, TieBreak::Fifo);
        let st = &run.streams[0];
        assert!(
            st.dram_wait_ticks > run.ticks / 2,
            "expected DRAM-bound: waited {} of {}",
            st.dram_wait_ticks,
            run.ticks
        );
    }

    #[test]
    fn llc_bound_step_records_internal_excess() {
        let mut p = params();
        p.llc.bytes_per_edge = 1.0; // strangle the internal port
        let loads = vec![step(10, 1, 8, 0, 1000)];
        let run = Machine::new(p, vec![StreamSpec { loads, cores: 1 }], TieBreak::Fifo, false).run();
        assert!(run.streams[0].int_excess_ticks > 500);
    }

    #[test]
    fn fuzzed_orderings_keep_counters_invariant() {
        let loads: Vec<StepLoad> =
            (0..12).map(|i| step(64 + i, 3, 48, if i % 4 == 3 { 96 } else { 0 }, 40)).collect();
        let base = run_one(loads.clone(), 3, TieBreak::Fifo);
        for seed in 0..32 {
            let fz = run_one(loads.clone(), 3, TieBreak::Fuzzed { seed });
            assert_eq!(fz.streams[0].dram_read_bytes, base.streams[0].dram_read_bytes);
            assert_eq!(fz.streams[0].dram_write_bytes, base.streams[0].dram_write_bytes);
            assert_eq!(fz.streams[0].int_bytes, base.streams[0].int_bytes);
            assert_eq!(fz.streams[0].macs, base.streams[0].macs);
            assert_eq!(fz.streams[0].steps, base.streams[0].steps);
        }
    }

    #[test]
    fn two_streams_contend_on_shared_dram() {
        // A DRAM-hungry stream slows down when a second identical stream
        // shares the channel.
        let loads = vec![step(50, 1, 2048, 0, 0); 6];
        let solo = run_one(loads.clone(), 1, TieBreak::Fifo);
        let both = Machine::new(
            params(),
            vec![
                StreamSpec { loads: loads.clone(), cores: 1 },
                StreamSpec { loads, cores: 1 },
            ],
            TieBreak::Fifo,
            false,
        )
        .run();
        assert!(
            both.streams[0].finish_tick > solo.streams[0].finish_tick,
            "contention had no effect: solo {} vs shared {}",
            solo.streams[0].finish_tick,
            both.streams[0].finish_tick
        );
        // Both tenants' traffic still lands exactly.
        assert_eq!(both.streams[0].dram_read_bytes, solo.streams[0].dram_read_bytes);
        assert_eq!(both.streams[1].dram_read_bytes, solo.streams[0].dram_read_bytes);
    }

    #[test]
    fn trace_records_component_activity() {
        let loads = vec![step(10, 1, 64, 32, 16)];
        let run = Machine::new(
            params(),
            vec![StreamSpec { loads, cores: 1 }],
            TieBreak::Fifo,
            true,
        )
        .run();
        assert!(!run.trace.is_empty());
        let comps: Vec<&str> = run.trace.iter().map(|e| e.component).collect();
        for want in ["pack", "dram", "core", "llc", "barrier"] {
            assert!(comps.contains(&want), "trace missing {want}: {comps:?}");
        }
    }
}
