//! The previous fixed-pipeline timing engine, kept behind the
//! `closed-form` feature as a differential oracle for the event engine.
//!
//! Each lowered [`StepLoad`] costs `max(t_compute, t_dram, t_internal)` —
//! the double-buffering assumption applied as arithmetic instead of event
//! causality. Because both engines consume the *same* lowering
//! ([`crate::engine::lower_cake`] / [`crate::engine::lower_goto`]), their
//! DRAM byte totals are u64-identical by construction; the interesting
//! differential is timing, where the event engine adds real pipeline
//! fill, barrier edges, clock-divider quantization, and posted-write
//! serialization. Tests pin the two engines' `seconds` within a
//! documented tolerance (see `tests/simulator_checks.rs`).

use cake_core::shape::CbBlockShape;
use cake_goto::params::GotoParams;

use crate::config::CpuConfig;
use crate::engine::{lower_cake, lower_goto, resolve_cake_shape, resolve_goto_params, Algo, SimParams};
use crate::machine::StepLoad;
use crate::report::SimReport;

struct StepAccumulator {
    seconds: f64,
    dram_bytes: u64,
    int_bytes: u64,
    macs: u64,
    dram_stall: f64,
    int_stall: f64,
    steps: usize,
    dram_gbps: f64,
    int_gbps: f64,
    freq_hz: f64,
    macs_per_cycle: f64,
}

impl StepAccumulator {
    fn new(cpu: &CpuConfig, sp: &SimParams) -> Self {
        Self {
            seconds: 0.0,
            dram_bytes: 0,
            int_bytes: 0,
            macs: 0,
            dram_stall: 0.0,
            int_stall: 0.0,
            steps: 0,
            dram_gbps: cpu.usable_dram_bw_gbs() * 1e9,
            int_gbps: sp
                .internal_bw_gbs_override
                .unwrap_or_else(|| cpu.internal_bw_gbs(sp.p))
                * 1e9,
            freq_hz: cpu.freq_ghz * 1e9,
            macs_per_cycle: cpu.macs_per_cycle_f32,
        }
    }

    /// One step: with double buffering IO overlaps compute, so the step
    /// costs `max(t_compute, t_dram, t_internal)`; the excess of either IO
    /// time over compute is recorded as stall time (the quantity
    /// VTune/perf report in Figure 7).
    fn step(&mut self, ld: &StepLoad) {
        let ext_bytes = ld.ext_read_bytes + ld.ext_write_bytes;
        let t_comp =
            ld.macs as f64 / (ld.active.max(1) as f64 * self.macs_per_cycle) / self.freq_hz;
        let t_dram = ext_bytes as f64 / self.dram_gbps;
        let t_int = ld.int_bytes as f64 / self.int_gbps;
        let t = t_comp.max(t_dram).max(t_int);
        self.seconds += t;
        self.dram_bytes += ext_bytes;
        self.int_bytes += ld.int_bytes;
        self.macs += ld.macs;
        self.dram_stall += (t_dram - t_comp).max(0.0);
        self.int_stall += (t_int - t_comp).max(0.0);
        self.steps += 1;
    }

    fn report(self, cpu: &CpuConfig, algo: Algo, sp: &SimParams) -> SimReport {
        let flops = 2.0 * sp.m as f64 * sp.k as f64 * sp.n as f64;
        SimReport {
            cpu: cpu.name.clone(),
            algo: algo.name().into(),
            p: sp.p,
            m: sp.m,
            k: sp.k,
            n: sp.n,
            seconds: self.seconds,
            gflops: if self.seconds > 0.0 { flops / self.seconds / 1e9 } else { 0.0 },
            dram_bytes: self.dram_bytes,
            avg_dram_bw_gbs: if self.seconds > 0.0 {
                self.dram_bytes as f64 / self.seconds / 1e9
            } else {
                0.0
            },
            dram_stall_seconds: self.dram_stall,
            internal_stall_seconds: self.int_stall,
            steps: self.steps,
            macs: self.macs,
            int_bytes: self.int_bytes,
            events: 0,
            engine: "closed-form".into(),
        }
    }
}

fn run(cpu: &CpuConfig, sp: &SimParams, algo: Algo, loads: &[StepLoad]) -> SimReport {
    let mut acc = StepAccumulator::new(cpu, sp);
    for ld in loads {
        acc.step(ld);
    }
    acc.report(cpu, algo, sp)
}

/// Closed-form CAKE simulation (auto-resolved shape).
pub fn simulate_cake(cpu: &CpuConfig, sp: &SimParams) -> SimReport {
    let shape = resolve_cake_shape(cpu, sp);
    simulate_cake_with_shape(cpu, sp, &shape)
}

/// Closed-form CAKE simulation with an explicit CB shape.
pub fn simulate_cake_with_shape(cpu: &CpuConfig, sp: &SimParams, shape: &CbBlockShape) -> SimReport {
    run(cpu, sp, Algo::Cake, &lower_cake(cpu, sp, shape))
}

/// Closed-form GOTO simulation (auto-resolved blocking).
pub fn simulate_goto(cpu: &CpuConfig, sp: &SimParams) -> SimReport {
    let g = resolve_goto_params(cpu, sp);
    simulate_goto_with_params(cpu, sp, &g)
}

/// Closed-form GOTO simulation with explicit blocking.
pub fn simulate_goto_with_params(cpu: &CpuConfig, sp: &SimParams, g: &GotoParams) -> SimReport {
    run(cpu, sp, Algo::Goto, &lower_goto(cpu, sp, g))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_traffic_equals_event_engine_by_construction() {
        let cpu = CpuConfig::intel_i9_10900k();
        let sp = SimParams::new(300, 150, 260, 4);
        let cf = simulate_cake(&cpu, &sp);
        let ev = crate::engine::simulate_cake(&cpu, &sp);
        assert_eq!(cf.dram_bytes, ev.dram_bytes);
        assert_eq!(cf.int_bytes, ev.int_bytes);
        assert_eq!(cf.macs, ev.macs);
        assert_eq!(cf.steps, ev.steps);
        assert_eq!(cf.engine, "closed-form");
        assert_eq!(ev.engine, "event");
    }

    #[test]
    fn closed_form_times_are_in_the_event_engine_ballpark() {
        // Coarse in-crate guard; the documented tolerance is pinned in
        // tests/simulator_checks.rs over every standing SimParams case.
        let cpu = CpuConfig::arm_cortex_a53();
        let sp = SimParams::square(1000, 4);
        let cf = simulate_cake(&cpu, &sp);
        let ev = crate::engine::simulate_cake(&cpu, &sp);
        let ratio = ev.seconds / cf.seconds;
        assert!((0.8..1.3).contains(&ratio), "event/closed-form = {ratio:.3}");
    }
}
