//! Simulated CPU configurations (paper Table 2) and internal-bandwidth
//! curves (pmbw measurements, Figures 10c / 11c / 12c).

const KIB: usize = 1024;
const MIB: usize = 1024 * 1024;

/// How a CPU's measured LLC-to-cores bandwidth scales with active cores.
///
/// The paper measured these with pmbw; the three evaluation CPUs show three
/// qualitatively different shapes, which drive the three figures' stories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InternalBwCurve {
    /// Linear at `gbs_per_core` up to `knee` cores, then a shallower
    /// `gbs_per_core_past_knee` slope (Intel i9-10900K: saturates past ~6
    /// cores, Figure 10c).
    Saturating {
        /// GB/s added per core before the knee.
        gbs_per_core: f64,
        /// Core count where scaling degrades.
        knee: usize,
        /// GB/s added per core past the knee.
        gbs_per_core_past_knee: f64,
    },
    /// `gbs_per_core * p` for all p (AMD 5950X: "increases roughly linearly
    /// by 50 GB/s per core", Figure 12c).
    Linear {
        /// GB/s added per core.
        gbs_per_core: f64,
    },
    /// Flat beyond a couple of cores (ARM Cortex-A53: "does not increase
    /// with the number of cores beyond 2", Figure 11c).
    Flat {
        /// Single-core bandwidth.
        base_gbs: f64,
        /// Asymptotic multi-core bandwidth.
        plateau_gbs: f64,
    },
}

impl InternalBwCurve {
    /// Measured-shape internal bandwidth at `p` active cores, GB/s.
    pub fn at(&self, p: usize) -> f64 {
        let pf = p as f64;
        match *self {
            InternalBwCurve::Saturating {
                gbs_per_core,
                knee,
                gbs_per_core_past_knee,
            } => {
                if p <= knee {
                    gbs_per_core * pf
                } else {
                    gbs_per_core * knee as f64 + gbs_per_core_past_knee * (pf - knee as f64)
                }
            }
            InternalBwCurve::Linear { gbs_per_core } => gbs_per_core * pf,
            InternalBwCurve::Flat { base_gbs, plateau_gbs } => {
                if p <= 1 {
                    base_gbs
                } else {
                    // Smooth approach to the plateau from 2 cores on.
                    plateau_gbs - (plateau_gbs - base_gbs) / pf
                }
            }
        }
    }

    /// The idealized linear extrapolation the paper's dashed lines use
    /// ("assume internal bandwidth increases proportionally per core").
    pub fn extrapolated(&self, p: usize) -> f64 {
        let slope = match *self {
            InternalBwCurve::Saturating { gbs_per_core, .. } => gbs_per_core,
            InternalBwCurve::Linear { gbs_per_core } => gbs_per_core,
            InternalBwCurve::Flat { base_gbs, .. } => base_gbs,
        };
        slope * p as f64
    }
}

/// A simulated CPU: Table 2 entries plus kernel/clock characteristics used
/// by the timing engine.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Human-readable name.
    pub name: String,
    /// Physical cores.
    pub cores: usize,
    /// Core clock, GHz.
    pub freq_ghz: f64,
    /// Per-core L1 data cache, bytes.
    pub l1_bytes: usize,
    /// Per-core private L2, bytes.
    pub l2_bytes: usize,
    /// Shared last-level cache, bytes (for the ARM part this *is* the L2;
    /// `l2_bytes` then models the L1 as the private level, following the
    /// paper's "local memory may be the L2 or L3 depending on
    /// architecture").
    pub llc_bytes: usize,
    /// DRAM capacity, bytes.
    pub dram_bytes: usize,
    /// Peak DRAM bandwidth, GB/s (Table 2).
    pub dram_bw_gbs: f64,
    /// Fraction of peak DRAM bandwidth sustainable under GEMM's mixed
    /// read/write streams (refresh, bank conflicts, write turnaround).
    /// ~1.0 for desktop DDR4, well below 1 for the A53's LPDDR interface
    /// (Figure 11a: ARMPL saturates near 1.1 GB/s of the nominal 2).
    pub dram_efficiency: f64,
    /// Memory-bus clock, GHz (DDR4-2933 runs its bus at 1.4665 GHz, etc).
    /// The event engine derives the DRAM channel's clock divider from the
    /// ratio of this to `freq_ghz`.
    pub dram_clock_ghz: f64,
    /// Uncore / LLC-fabric clock, GHz; divider source for the LLC port.
    pub llc_clock_ghz: f64,
    /// Whether DRAM stores allocate (read the line first). Vendor desktop
    /// libraries use non-temporal stores for C (no allocate); the ARM
    /// kernels use plain stores, doubling partial-C write traffic.
    pub write_allocate: bool,
    /// Measured internal-bandwidth scaling curve.
    pub internal_bw: InternalBwCurve,
    /// Sustained MACs per cycle per core for f32 GEMM (captures SIMD width
    /// and FMA throughput after real-kernel derating; calibrated to the
    /// paper's reported GFLOP/s).
    pub macs_per_cycle_f32: f64,
    /// Kernel register-tile rows used on this CPU.
    pub mr: usize,
    /// Kernel register-tile columns used on this CPU.
    pub nr: usize,
    /// Memory-level latencies in cycles (L1, L2, LLC, DRAM) for the stall
    /// model of Figure 7a.
    pub latency_cycles: [f64; 4],
}

impl CpuConfig {
    /// Intel i9-10900K (Table 2 row 1): 10 cores, 40 GB/s DRAM, 20 MiB L3,
    /// internal bandwidth saturating past 6 cores (Figure 10c).
    pub fn intel_i9_10900k() -> Self {
        Self {
            name: "Intel i9-10900K".into(),
            cores: 10,
            freq_ghz: 3.7,
            l1_bytes: 32 * KIB,
            l2_bytes: 256 * KIB,
            llc_bytes: 20 * MIB,
            dram_bytes: 32 * 1024 * MIB,
            dram_bw_gbs: 40.0,
            dram_efficiency: 0.95,
            dram_clock_ghz: 1.4665, // DDR4-2933 bus clock
            llc_clock_ghz: 3.0,     // Comet Lake uncore
            write_allocate: false,
            internal_bw: InternalBwCurve::Saturating {
                gbs_per_core: 58.0,
                knee: 6,
                gbs_per_core_past_knee: 20.0,
            },
            macs_per_cycle_f32: 16.0, // ~1.18 TFLOP/s at 10 cores
            mr: 6,
            nr: 16,
            latency_cycles: [4.0, 14.0, 42.0, 220.0],
        }
    }

    /// AMD Ryzen 9 5950X (Table 2 row 2): 16 cores, 47 GB/s DRAM, 64 MiB
    /// L3, internal bandwidth ~linear at 50 GB/s per core (Figure 12c).
    pub fn amd_ryzen_9_5950x() -> Self {
        Self {
            name: "AMD Ryzen 9 5950X".into(),
            cores: 16,
            freq_ghz: 3.4,
            l1_bytes: 32 * KIB,
            l2_bytes: 512 * KIB,
            llc_bytes: 64 * MIB,
            dram_bytes: 128 * 1024 * MIB,
            dram_bw_gbs: 47.0,
            dram_efficiency: 0.95,
            dram_clock_ghz: 1.6, // DDR4-3200 bus clock
            llc_clock_ghz: 1.8,  // Zen 3 fabric (fclk)
            write_allocate: false,
            internal_bw: InternalBwCurve::Linear { gbs_per_core: 50.0 },
            macs_per_cycle_f32: 11.0, // ~1.2 TFLOP/s at 16 cores
            mr: 6,
            nr: 16,
            latency_cycles: [4.0, 12.0, 46.0, 210.0],
        }
    }

    /// ARM v8 Cortex-A53 (Table 2 row 3): 4 cores, 2 GB/s DRAM, 512 KiB
    /// shared L2 as the LLC, internal bandwidth flat past 2 cores
    /// (Figure 11c).
    pub fn arm_cortex_a53() -> Self {
        Self {
            name: "ARM v8 Cortex-A53".into(),
            cores: 4,
            freq_ghz: 1.4,
            l1_bytes: 16 * KIB,
            // No private L2 on this part: the private level is the L1 and
            // the shared 512 KiB L2 plays the LLC role.
            l2_bytes: 16 * KIB,
            llc_bytes: 512 * KIB,
            dram_bytes: 1024 * MIB,
            dram_bw_gbs: 2.0,
            dram_efficiency: 0.55,
            dram_clock_ghz: 0.8, // LPDDR3 bus clock
            llc_clock_ghz: 0.7,  // CCI/L2 fabric
            write_allocate: true,
            internal_bw: InternalBwCurve::Flat {
                base_gbs: 10.0,
                plateau_gbs: 14.0,
            },
            macs_per_cycle_f32: 1.0, // NEON dual-issue FMA derated; ~11 GFLOP/s at 4 cores
            mr: 4,
            nr: 4,
            latency_cycles: [3.0, 15.0, 15.0, 150.0],
        }
    }

    /// A config shaped like the *detected host*: core count from
    /// `cake_core::topology` and cache sizes from the caller (the same
    /// `--llc-mib` / `CakeConfig` knobs the runtime uses), with
    /// Intel-desktop-class clocks and bandwidth curves as the prior. This
    /// is what the autotuner scores candidates against, so the simulated
    /// ranking reflects the machine the winner will actually run on.
    pub fn detected_host(l2_bytes: usize, llc_bytes: usize) -> Self {
        let cores = cake_core::topology::available_cores().max(1);
        Self {
            name: format!("host ({cores} cores)"),
            cores,
            l2_bytes: l2_bytes.max(KIB),
            llc_bytes: llc_bytes.max(4 * KIB),
            ..Self::intel_i9_10900k()
        }
    }

    /// All Table 2 CPUs.
    pub fn table2() -> Vec<CpuConfig> {
        vec![
            Self::intel_i9_10900k(),
            Self::amd_ryzen_9_5950x(),
            Self::arm_cortex_a53(),
        ]
    }

    /// Look a Table-2 CPU up by its short name (`intel`, `amd`, `arm`).
    pub fn by_name(name: &str) -> Option<CpuConfig> {
        match name {
            "intel" => Some(Self::intel_i9_10900k()),
            "amd" => Some(Self::amd_ryzen_9_5950x()),
            "arm" => Some(Self::arm_cortex_a53()),
            _ => None,
        }
    }

    /// Short names accepted by [`Self::by_name`], in Table-2 order.
    pub fn table2_names() -> [&'static str; 3] {
        ["intel", "amd", "arm"]
    }

    /// Internal bandwidth at `p` cores, GB/s (measured shape).
    pub fn internal_bw_gbs(&self, p: usize) -> f64 {
        self.internal_bw.at(p)
    }

    /// Usable DRAM bandwidth, GB/s.
    pub fn usable_dram_bw_gbs(&self) -> f64 {
        self.dram_bw_gbs * self.dram_efficiency
    }

    /// Peak f32 throughput at `p` cores, GFLOP/s.
    pub fn peak_gflops(&self, p: usize) -> f64 {
        2.0 * self.macs_per_cycle_f32 * p as f64 * self.freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_constants() {
        let intel = CpuConfig::intel_i9_10900k();
        assert_eq!(intel.cores, 10);
        assert_eq!(intel.llc_bytes, 20 * MIB);
        assert_eq!(intel.dram_bw_gbs, 40.0);

        let amd = CpuConfig::amd_ryzen_9_5950x();
        assert_eq!(amd.cores, 16);
        assert_eq!(amd.llc_bytes, 64 * MIB);
        assert_eq!(amd.dram_bw_gbs, 47.0);

        let arm = CpuConfig::arm_cortex_a53();
        assert_eq!(arm.cores, 4);
        assert_eq!(arm.dram_bw_gbs, 2.0);
        assert_eq!(arm.llc_bytes, 512 * KIB);
    }

    #[test]
    fn intel_internal_bw_saturates_past_knee() {
        let c = CpuConfig::intel_i9_10900k();
        let slope_early = c.internal_bw_gbs(4) - c.internal_bw_gbs(3);
        let slope_late = c.internal_bw_gbs(9) - c.internal_bw_gbs(8);
        assert!(slope_late < slope_early * 0.5);
        // Monotone non-decreasing.
        for p in 1..10 {
            assert!(c.internal_bw_gbs(p + 1) >= c.internal_bw_gbs(p));
        }
    }

    #[test]
    fn amd_internal_bw_linear() {
        let c = CpuConfig::amd_ryzen_9_5950x();
        for p in 1..=16 {
            assert!((c.internal_bw_gbs(p) - 50.0 * p as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn arm_internal_bw_flat_past_two_cores() {
        let c = CpuConfig::arm_cortex_a53();
        let d12 = c.internal_bw_gbs(2) - c.internal_bw_gbs(1);
        let d34 = c.internal_bw_gbs(4) - c.internal_bw_gbs(3);
        assert!(d34 < d12 * 0.6, "d12={d12} d34={d34}");
        assert!(c.internal_bw_gbs(8) < 15.0);
    }

    #[test]
    fn extrapolation_is_linear_everywhere() {
        for c in CpuConfig::table2() {
            let e1 = c.internal_bw.extrapolated(1);
            for p in 2..=2 * c.cores {
                assert!((c.internal_bw.extrapolated(p) - e1 * p as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn peak_gflops_in_papers_ballpark() {
        // Figure 10b: Intel ~1.1-1.2 TFLOP/s at 10 cores.
        let intel = CpuConfig::intel_i9_10900k();
        let g = intel.peak_gflops(10);
        assert!((1000.0..1400.0).contains(&g), "intel {g}");
        // Figure 12b: AMD ~1.2 TFLOP/s at 16 cores.
        let amd = CpuConfig::amd_ryzen_9_5950x();
        let g = amd.peak_gflops(16);
        assert!((1000.0..1400.0).contains(&g), "amd {g}");
        // Figure 11b: ARM ~10-11 GFLOP/s at 4 cores.
        let arm = CpuConfig::arm_cortex_a53();
        let g = arm.peak_gflops(4);
        assert!((8.0..14.0).contains(&g), "arm {g}");
    }

    #[test]
    fn by_name_covers_table2_and_rejects_unknown() {
        for name in CpuConfig::table2_names() {
            assert!(CpuConfig::by_name(name).is_some(), "{name} missing");
        }
        assert!(CpuConfig::by_name("m1").is_none());
        assert_eq!(CpuConfig::by_name("arm").unwrap().cores, 4);
    }

    #[test]
    fn clock_domains_are_slower_than_cores() {
        // Every Table-2 part clocks its memory bus and LLC fabric at or
        // below the core clock, so the event engine's dividers are >= 1.
        for c in CpuConfig::table2() {
            assert!(c.dram_clock_ghz > 0.0 && c.dram_clock_ghz <= c.freq_ghz);
            assert!(c.llc_clock_ghz > 0.0 && c.llc_clock_ghz <= c.freq_ghz);
        }
    }

    #[test]
    fn configs_clone_round_trip() {
        let c = CpuConfig::intel_i9_10900k();
        let back = c.clone();
        assert_eq!(back.name, c.name);
        assert_eq!(back.cores, c.cores);
        assert_eq!(back.internal_bw, c.internal_bw);
    }
}
