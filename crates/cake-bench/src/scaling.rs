//! Multicore p-sweep: strong-scaling measurement over a fixed block grid.
//!
//! The paper's Figure 13 argument is that CAKE's computation-shaped blocks
//! let throughput scale with cores while DRAM traffic stays constant. This
//! module measures both halves on the real executor: sweep `p` over the
//! same problem, record GFLOP/s, speedup over `p = 1`, and scaling
//! efficiency (`speedup / p`), and capture the measured pack-element
//! counters — which must be **identical across `p`** (the work moved per
//! element is a property of the block schedule, not of how many workers
//! split it).
//!
//! To make the counter comparison exact the sweep holds the *block grid*
//! fixed: `CbBlockShape::fixed(p, bm / p, bk, bn)` keeps `p * mc = bm`
//! constant, so every `p` runs the identical K-first snake over identical
//! blocks and only the intra-block partition changes. `bm` is chosen
//! divisible by every swept `p` (8 covers the default `{1, 2, 4, 8}`).
//!
//! Used by `bench_snapshot` (the `scaling` section of `BENCH_gemm.json`)
//! and by `cakectl gemm --threads`, whose `--check-counters` mode turns
//! [`counters_invariant`] into a CI gate (`ci.sh --scale-smoke`).

use std::time::Instant;

use cake_core::executor::execute_with_stats_in;
use cake_core::pool::ThreadPool;
use cake_core::shape::CbBlockShape;
use cake_core::topology;
use cake_core::workspace::GemmWorkspace;
use cake_matrix::{init, Matrix};

/// One `p` of a strong-scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Requested worker count (drives the block shape and the model).
    pub p: usize,
    /// Workers actually spawned after the topology clamp: `min(p, cores)`.
    /// Honest-reporting field — a speedup of 1.0 at `effective_p = 1` is a
    /// clamped run, not a scaling failure.
    pub effective_p: usize,
    /// Barrier mode the executor selected (`"spin"` or `"park"`).
    pub barrier_mode: &'static str,
    /// Best-of-iters throughput.
    pub gflops: f64,
    /// `gflops / gflops(p = 1)`; 1.0 at the baseline.
    pub speedup: f64,
    /// `speedup / p` — 1.0 is perfect strong scaling.
    pub efficiency: f64,
    /// A elements packed (0 unless `traffic-counters` is enabled).
    pub a_elems: u64,
    /// B elements packed.
    pub b_elems: u64,
    /// C elements updated.
    pub c_elems: u64,
    /// Slowest single worker's total barrier wait.
    pub barrier_wait_ns_max: u64,
    /// Barrier wait summed over workers.
    pub barrier_wait_ns_sum: u64,
    /// Per-worker compute imbalance (`max * p / sum`; 1.0 = perfectly even).
    pub imbalance: f64,
    /// Microkernel that produced this point (from [`ExecStats::kernel`];
    /// all points of one sweep share it — recorded so `BENCH_gemm.json`
    /// attributes every number to its dispatch tier).
    ///
    /// [`ExecStats::kernel`]: cake_core::executor::ExecStats::kernel
    pub kernel: &'static str,
}

/// Block dimensions for a grid-invariant sweep: `bm` is a multiple of
/// `p_lcm` (so `bm / p` is exact for every swept `p`) and every dimension
/// is clamped to the problem so tiny shapes still sweep.
pub fn fixed_grid_dims(m: usize, k: usize, n: usize, p_lcm: usize) -> (usize, usize, usize) {
    let bm = ((m.min(96) / p_lcm).max(1)) * p_lcm;
    let bk = k.clamp(1, 96);
    let bn = n.clamp(1, 192);
    (bm, bk, bn)
}

/// Sweep `threads` over one `m x k x n` f32 GEMM, best-of-`iters` per
/// point. `pin` requests core affinity for each pool (best-effort).
///
/// # Panics
/// Panics if `threads` is empty or any entry does not divide the chosen
/// `bm` (use counts from `{1, 2, 4, 8}`, whose lcm 8 is the default).
pub fn sweep_shape(
    m: usize,
    k: usize,
    n: usize,
    threads: &[usize],
    iters: usize,
    pin: bool,
) -> Vec<ScalePoint> {
    assert!(!threads.is_empty(), "sweep needs at least one thread count");
    let p_lcm = threads.iter().fold(1, |l, &p| lcm(l, p.max(1)));
    let (bm, bk, bn) = fixed_grid_dims(m, k, n, p_lcm);
    let iters = iters.max(1);

    let a = init::random::<f32>(m, k, 1);
    let b = init::random::<f32>(k, n, 2);
    let ukr = cake_kernels::best_kernel::<f32>();

    let mut points = Vec::with_capacity(threads.len());
    let mut base_gflops = None;
    for &p in threads {
        assert!(p > 0 && bm % p == 0, "p = {p} must divide bm = {bm}");
        let shape = CbBlockShape::fixed(p, bm / p, bk, bn);
        // The shape (and thus the block grid and the element counters)
        // follows the *requested* p; the pool is clamped to the host so an
        // oversubscribed sweep measures real parallelism, not timeslicing.
        let pool = ThreadPool::with_affinity(topology::effective_p(p), pin);
        let mut ws = GemmWorkspace::<f32>::new();
        let mut c = Matrix::<f32>::zeros(m, n);
        // Warmup sizes the workspace; timed iters then run allocation-free.
        let mut stats =
            execute_with_stats_in(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool, &mut ws);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Instant::now();
            stats = execute_with_stats_in(
                &a.view(),
                &b.view(),
                &mut c.view_mut(),
                &shape,
                &ukr,
                &pool,
                &mut ws,
            );
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let gflops = 2.0 * m as f64 * k as f64 * n as f64 / best / 1e9;
        let base = *base_gflops.get_or_insert(gflops);
        let speedup = gflops / base;
        points.push(ScalePoint {
            p,
            effective_p: stats.workers,
            barrier_mode: stats.barrier_mode.as_str(),
            gflops,
            speedup,
            efficiency: speedup / p as f64,
            a_elems: stats.a_elems_loaded,
            b_elems: stats.b_elems_loaded,
            c_elems: stats.c_elems_updated,
            barrier_wait_ns_max: stats.barrier_wait_ns_max,
            barrier_wait_ns_sum: stats.barrier_wait_ns,
            imbalance: stats.compute_imbalance(),
            kernel: stats.kernel,
        });
    }
    points
}

/// The CB-block bandwidth claim as a checkable predicate: every swept `p`
/// must have packed/updated exactly the same element counts. `Err` carries
/// a human-readable diff.
pub fn counters_invariant(points: &[ScalePoint]) -> Result<(), String> {
    let Some(first) = points.first() else {
        return Ok(());
    };
    for pt in &points[1..] {
        if (pt.a_elems, pt.b_elems, pt.c_elems) != (first.a_elems, first.b_elems, first.c_elems) {
            return Err(format!(
                "pack counters diverge: p={} moved (A {}, B {}, C {}) but p={} moved \
                 (A {}, B {}, C {})",
                first.p,
                first.a_elems,
                first.b_elems,
                first.c_elems,
                pt.p,
                pt.a_elems,
                pt.b_elems,
                pt.c_elems
            ));
        }
    }
    Ok(())
}

/// Same-host sanity gate for a sweep: whenever the host has comfortable
/// headroom (`cores >= 2 * p`) a multicore point must actually beat the
/// single-core baseline (`speedup > 1.0`). Points the topology clamp cut
/// down (`effective_p < p`) and hosts without headroom are exempt — a
/// 1-core CI box records `effective_p = 1` everywhere and passes
/// vacuously, while a real 16-core host cannot ship a p=2 slowdown.
pub fn scaling_sane(points: &[ScalePoint], cores: usize) -> Result<(), String> {
    for pt in points {
        if pt.p > 1 && pt.effective_p == pt.p && cores >= 2 * pt.p && pt.speedup <= 1.0 {
            return Err(format!(
                "p={} ran at {:.2}x on a {cores}-core host (effective_p={}, barrier={}) — \
                 multicore must win when cores >= 2p",
                pt.p, pt.speedup, pt.effective_p, pt.barrier_mode
            ));
        }
    }
    Ok(())
}

/// One kernel tier of a tier sweep (`cakectl gemm --kernel-smoke`).
#[derive(Debug, Clone, Copy)]
pub struct KernelPoint {
    /// The dispatch tier this point ran on.
    pub tier: cake_kernels::KernelTier,
    /// The tier's kernel name as reported by the executor.
    pub kernel: &'static str,
    /// Register-tile shape of that kernel.
    pub mr: usize,
    /// Register-tile shape of that kernel.
    pub nr: usize,
    /// Best-of-iters throughput.
    pub gflops: f64,
    /// A elements packed (0 unless `traffic-counters` is enabled).
    pub a_elems: u64,
    /// B elements packed.
    pub b_elems: u64,
    /// C elements updated.
    pub c_elems: u64,
}

/// Run one single-threaded f32 GEMM per kernel tier the host supports, on
/// one fixed block grid. The traffic counters tally live elements packed
/// from the source views — a property of the block schedule, not of the
/// kernel's register tile — so they must be identical across tiers
/// ([`kernel_counters_invariant`], the `ci.sh --kernel-smoke` gate).
pub fn sweep_kernels(m: usize, k: usize, n: usize, iters: usize) -> Vec<KernelPoint> {
    let (bm, bk, bn) = fixed_grid_dims(m, k, n, 1);
    let shape = CbBlockShape::fixed(1, bm, bk, bn);
    let iters = iters.max(1);
    let a = init::random::<f32>(m, k, 1);
    let b = init::random::<f32>(k, n, 2);

    let tiers = cake_kernels::available_tiers();
    let mut points = Vec::with_capacity(tiers.len());
    for tier in tiers {
        let ukr = cake_kernels::tier_kernel::<f32>(tier).expect("available tier has a kernel");
        let pool = ThreadPool::with_affinity(1, false);
        let mut ws = GemmWorkspace::<f32>::new();
        let mut c = Matrix::<f32>::zeros(m, n);
        let mut stats =
            execute_with_stats_in(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool, &mut ws);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Instant::now();
            stats = execute_with_stats_in(
                &a.view(),
                &b.view(),
                &mut c.view_mut(),
                &shape,
                &ukr,
                &pool,
                &mut ws,
            );
            best = best.min(t0.elapsed().as_secs_f64());
        }
        points.push(KernelPoint {
            tier,
            kernel: stats.kernel,
            mr: ukr.mr(),
            nr: ukr.nr(),
            gflops: 2.0 * m as f64 * k as f64 * n as f64 / best / 1e9,
            a_elems: stats.a_elems_loaded,
            b_elems: stats.b_elems_loaded,
            c_elems: stats.c_elems_updated,
        });
    }
    points
}

/// The tier-invariance gate: on a fixed block grid every kernel tier must
/// have packed/updated exactly the same element counts — wider register
/// tiles change how a block is carved, never how many live elements move.
pub fn kernel_counters_invariant(points: &[KernelPoint]) -> Result<(), String> {
    let Some(first) = points.first() else {
        return Ok(());
    };
    for pt in &points[1..] {
        if (pt.a_elems, pt.b_elems, pt.c_elems) != (first.a_elems, first.b_elems, first.c_elems) {
            return Err(format!(
                "tier counters diverge: {} moved (A {}, B {}, C {}) but {} moved \
                 (A {}, B {}, C {})",
                first.kernel,
                first.a_elems,
                first.b_elems,
                first.c_elems,
                pt.kernel,
                pt.a_elems,
                pt.b_elems,
                pt.c_elems
            ));
        }
    }
    Ok(())
}

/// One dtype of a narrow-dtype sweep (`cakectl gemm --dtype-smoke`, the
/// `dtypes` section of `BENCH_gemm.json`).
#[derive(Debug, Clone, Copy)]
pub struct DtypePoint {
    /// Operand dtype name (`"f32"`, `"f64"`, `"bf16"`, `"int8"`).
    pub dtype: &'static str,
    /// Dispatched microkernel name as reported by the executor.
    pub kernel: &'static str,
    /// Best-of-iters throughput in GOP/s (`2mkn` ops regardless of dtype,
    /// so the column directly shows the narrow-dtype speedup).
    pub gops: f64,
    /// Workspace allocations summed over the timed (post-warmup) iters.
    /// Must be 0: the zero-alloc warm path is dtype-independent.
    pub allocs_after_warmup: u64,
    /// A elements packed (0 unless `traffic-counters` is enabled).
    pub a_elems: u64,
    /// B elements packed.
    pub b_elems: u64,
    /// C elements updated.
    pub c_elems: u64,
    /// `size_of` one operand element.
    pub elem_bytes: usize,
    /// `size_of` one accumulator element.
    pub acc_bytes: usize,
}

fn dtype_point<T: cake_kernels::select::KernelSelect>(
    m: usize,
    k: usize,
    n: usize,
    iters: usize,
    shape: &CbBlockShape,
    gen: impl Fn(usize, usize, u64) -> Matrix<T>,
) -> DtypePoint {
    let a = gen(m, k, 1);
    let b = gen(k, n, 2);
    let ukr = cake_kernels::best_kernel::<T>();
    let pool = ThreadPool::with_affinity(1, false);
    let mut ws = GemmWorkspace::<T>::new();
    let mut c = Matrix::<T::Acc>::zeros(m, n);
    let mut stats =
        execute_with_stats_in(&a.view(), &b.view(), &mut c.view_mut(), shape, &ukr, &pool, &mut ws);
    let mut best = f64::INFINITY;
    let mut warm_allocs = 0u64;
    for _ in 0..iters {
        let t0 = Instant::now();
        stats = execute_with_stats_in(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            shape,
            &ukr,
            &pool,
            &mut ws,
        );
        best = best.min(t0.elapsed().as_secs_f64());
        warm_allocs += stats.allocations as u64;
    }
    DtypePoint {
        dtype: T::NAME,
        kernel: stats.kernel,
        gops: 2.0 * m as f64 * k as f64 * n as f64 / best / 1e9,
        allocs_after_warmup: warm_allocs,
        a_elems: stats.a_elems_loaded,
        b_elems: stats.b_elems_loaded,
        c_elems: stats.c_elems_updated,
        elem_bytes: std::mem::size_of::<T>(),
        acc_bytes: std::mem::size_of::<T::Acc>(),
    }
}

/// Run one single-threaded GEMM per supported dtype (f32, f64, bf16, int8)
/// on one fixed block grid, each through its own best-tier kernel. Like
/// the tier sweep, the *element* counters tally live source elements — a
/// property of the block schedule, never of the element width — so they
/// must be identical across dtypes ([`dtype_counters_invariant`]); only
/// the byte traffic (`elem_bytes * elems`) shrinks with the dtype.
pub fn sweep_dtypes(m: usize, k: usize, n: usize, iters: usize) -> Vec<DtypePoint> {
    use cake_matrix::Bf16;
    let (bm, bk, bn) = fixed_grid_dims(m, k, n, 1);
    let shape = CbBlockShape::fixed(1, bm, bk, bn);
    let iters = iters.max(1);
    vec![
        dtype_point::<f32>(m, k, n, iters, &shape, init::random::<f32>),
        dtype_point::<f64>(m, k, n, iters, &shape, init::random::<f64>),
        dtype_point::<Bf16>(m, k, n, iters, &shape, |r, c, s| {
            let f = init::random::<f32>(r, c, s);
            Matrix::from_fn(r, c, |i, j| Bf16::from_f32(f.get(i, j)))
        }),
        dtype_point::<i8>(m, k, n, iters, &shape, init::random_i8),
    ]
}

/// The dtype-invariance gate: on a fixed block grid every dtype must have
/// packed/updated exactly the same element counts (element movement is a
/// schedule property; only bytes-per-element changes), and every dtype's
/// warm path must be allocation-free. `Err` carries a human-readable diff.
pub fn dtype_counters_invariant(points: &[DtypePoint]) -> Result<(), String> {
    let Some(first) = points.first() else {
        return Ok(());
    };
    for pt in points {
        if pt.allocs_after_warmup != 0 {
            return Err(format!(
                "dtype {} allocated {} time(s) after warmup — the zero-alloc warm \
                 path must hold for every dtype",
                pt.dtype, pt.allocs_after_warmup
            ));
        }
    }
    for pt in &points[1..] {
        if (pt.a_elems, pt.b_elems, pt.c_elems) != (first.a_elems, first.b_elems, first.c_elems) {
            return Err(format!(
                "dtype counters diverge: {} moved (A {}, B {}, C {}) but {} moved \
                 (A {}, B {}, C {})",
                first.dtype,
                first.a_elems,
                first.b_elems,
                first.c_elems,
                pt.dtype,
                pt.a_elems,
                pt.b_elems,
                pt.c_elems
            ));
        }
    }
    Ok(())
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 { a } else { gcd(b, a % b) }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_grid_dims_divisible_and_clamped() {
        let (bm, bk, bn) = fixed_grid_dims(512, 512, 512, 8);
        assert_eq!((bm % 8, bm <= 96, bk <= 96, bn <= 192), (0, true, true, true));
        // Tiny problems still produce a nonzero grid.
        let (bm, bk, bn) = fixed_grid_dims(5, 3, 2, 8);
        assert!(bm >= 8 && bk == 3 && bn == 2, "got {bm} {bk} {bn}");
    }

    #[test]
    fn sweep_reports_baseline_speedup_of_one_and_invariant_counters() {
        let points = sweep_shape(64, 48, 64, &[1, 2, 4], 1, false);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].p, 1);
        assert!((points[0].speedup - 1.0).abs() < 1e-12);
        assert!((points[0].efficiency - 1.0).abs() < 1e-12);
        for pt in &points {
            assert!(pt.gflops > 0.0);
            assert!(pt.imbalance >= 1.0, "imbalance {} below floor", pt.imbalance);
            assert!(pt.barrier_wait_ns_max <= pt.barrier_wait_ns_sum);
        }
        // The bandwidth claim: identical element movement at every p. The
        // counters are live here (cake-verify enables traffic-counters).
        assert!(points[0].a_elems > 0, "counters should be compiled in");
        counters_invariant(&points).expect("fixed-grid sweep must move identical elements");
    }

    #[test]
    fn divergent_counters_are_reported() {
        let mut points = sweep_shape(32, 32, 32, &[1, 2], 1, false);
        points[1].b_elems += 1;
        let err = counters_invariant(&points).unwrap_err();
        assert!(err.contains("diverge"), "{err}");
    }

    #[test]
    fn sweep_records_the_topology_clamp() {
        let cores = cake_core::topology::available_cores();
        let points = sweep_shape(32, 32, 32, &[1, 2, 8], 1, false);
        for pt in &points {
            assert_eq!(pt.effective_p, pt.p.min(cores), "p={}", pt.p);
            // api-independent pools: park exactly when oversubscribed.
            let expect = if pt.effective_p > cores { "park" } else { "spin" };
            assert_eq!(pt.barrier_mode, expect, "p={}", pt.p);
        }
    }

    fn gate_point(p: usize, effective_p: usize, speedup: f64) -> ScalePoint {
        ScalePoint {
            p,
            effective_p,
            barrier_mode: "spin",
            gflops: speedup,
            speedup,
            efficiency: speedup / p as f64,
            a_elems: 0,
            b_elems: 0,
            c_elems: 0,
            barrier_wait_ns_max: 0,
            barrier_wait_ns_sum: 0,
            imbalance: 1.0,
            kernel: "",
        }
    }

    #[test]
    fn kernel_sweep_covers_available_tiers_with_invariant_counters() {
        let points = sweep_kernels(48, 40, 56, 1);
        let tiers = cake_kernels::available_tiers();
        assert_eq!(points.len(), tiers.len());
        for (pt, tier) in points.iter().zip(tiers) {
            assert_eq!(pt.tier, tier);
            assert!(pt.kernel.starts_with(tier.name()), "{} vs {}", pt.kernel, tier);
            assert!(pt.gflops > 0.0 && pt.mr >= 1 && pt.nr >= 1);
        }
        assert!(points[0].a_elems > 0, "counters should be compiled in");
        kernel_counters_invariant(&points).expect("fixed grid must move identical elements");
        // The sweep's points all record their own kernel name.
        let mut seen: Vec<&str> = points.iter().map(|p| p.kernel).collect();
        seen.dedup();
        assert_eq!(seen.len(), points.len(), "each tier reports a distinct kernel");
    }

    #[test]
    fn divergent_kernel_counters_are_reported() {
        let mut points = sweep_kernels(24, 24, 24, 1);
        if points.len() < 2 {
            return; // single-tier host: nothing to diverge
        }
        points[1].c_elems += 7;
        let err = kernel_counters_invariant(&points).unwrap_err();
        assert!(err.contains("diverge"), "{err}");
    }

    #[test]
    fn dtype_sweep_covers_all_four_dtypes_with_invariant_counters() {
        let points = sweep_dtypes(48, 40, 56, 1);
        let names: Vec<&str> = points.iter().map(|p| p.dtype).collect();
        assert_eq!(names, ["f32", "f64", "bf16", "int8"]);
        for pt in &points {
            assert!(pt.gops > 0.0, "{}: no throughput", pt.dtype);
            assert!(!pt.kernel.is_empty(), "{}: kernel unrecorded", pt.dtype);
            assert_eq!(pt.allocs_after_warmup, 0, "{}: warm path allocated", pt.dtype);
        }
        // Byte widths are the dtype's, not hardcoded f32's.
        assert_eq!(points[3].elem_bytes, 1);
        assert_eq!(points[3].acc_bytes, 4);
        assert_eq!(points[2].elem_bytes, 2);
        assert!(points[0].a_elems > 0, "counters should be compiled in");
        dtype_counters_invariant(&points).expect("fixed grid must move identical elements");
    }

    #[test]
    fn divergent_dtype_counters_and_warm_allocs_are_reported() {
        let mut points = sweep_dtypes(24, 24, 24, 1);
        points[1].a_elems += 3;
        let err = dtype_counters_invariant(&points).unwrap_err();
        assert!(err.contains("diverge"), "{err}");
        points[1].a_elems -= 3;
        points[2].allocs_after_warmup = 2;
        let err = dtype_counters_invariant(&points).unwrap_err();
        assert!(err.contains("allocated"), "{err}");
    }

    #[test]
    fn sanity_gate_requires_speedup_only_with_headroom() {
        let slow = [gate_point(1, 1, 1.0), gate_point(2, 2, 0.8)];
        // Plenty of cores: a p=2 slowdown is a failure.
        let err = scaling_sane(&slow, 16).unwrap_err();
        assert!(err.contains("p=2"), "{err}");
        // No headroom (cores < 2p): exempt.
        scaling_sane(&slow, 3).expect("no-headroom host must pass");
        // Clamped points are exempt regardless of host size.
        let clamped = [gate_point(1, 1, 1.0), gate_point(8, 2, 0.5)];
        scaling_sane(&clamped, 64).expect("clamped point must be exempt");
        // A winning sweep passes everywhere.
        let good = [gate_point(1, 1, 1.0), gate_point(2, 2, 1.7)];
        scaling_sane(&good, 16).expect("speedup > 1 must pass");
    }
}
