//! Multicore p-sweep: strong-scaling measurement over a fixed block grid.
//!
//! The paper's Figure 13 argument is that CAKE's computation-shaped blocks
//! let throughput scale with cores while DRAM traffic stays constant. This
//! module measures both halves on the real executor: sweep `p` over the
//! same problem, record GFLOP/s, speedup over `p = 1`, and scaling
//! efficiency (`speedup / p`), and capture the measured pack-element
//! counters — which must be **identical across `p`** (the work moved per
//! element is a property of the block schedule, not of how many workers
//! split it).
//!
//! To make the counter comparison exact the sweep holds the *block grid*
//! fixed: `CbBlockShape::fixed(p, bm / p, bk, bn)` keeps `p * mc = bm`
//! constant, so every `p` runs the identical K-first snake over identical
//! blocks and only the intra-block partition changes. `bm` is chosen
//! divisible by every swept `p` (8 covers the default `{1, 2, 4, 8}`).
//!
//! Used by `bench_snapshot` (the `scaling` section of `BENCH_gemm.json`)
//! and by `cakectl gemm --threads`, whose `--check-counters` mode turns
//! [`counters_invariant`] into a CI gate (`ci.sh --scale-smoke`).

use std::time::Instant;

use cake_core::executor::execute_with_stats_in;
use cake_core::pool::ThreadPool;
use cake_core::shape::CbBlockShape;
use cake_core::workspace::GemmWorkspace;
use cake_matrix::{init, Matrix};

/// One `p` of a strong-scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Worker count.
    pub p: usize,
    /// Best-of-iters throughput.
    pub gflops: f64,
    /// `gflops / gflops(p = 1)`; 1.0 at the baseline.
    pub speedup: f64,
    /// `speedup / p` — 1.0 is perfect strong scaling.
    pub efficiency: f64,
    /// A elements packed (0 unless `traffic-counters` is enabled).
    pub a_elems: u64,
    /// B elements packed.
    pub b_elems: u64,
    /// C elements updated.
    pub c_elems: u64,
    /// Slowest single worker's total barrier wait.
    pub barrier_wait_ns_max: u64,
    /// Barrier wait summed over workers.
    pub barrier_wait_ns_sum: u64,
    /// Per-worker compute imbalance (`max * p / sum`; 1.0 = perfectly even).
    pub imbalance: f64,
}

/// Block dimensions for a grid-invariant sweep: `bm` is a multiple of
/// `p_lcm` (so `bm / p` is exact for every swept `p`) and every dimension
/// is clamped to the problem so tiny shapes still sweep.
pub fn fixed_grid_dims(m: usize, k: usize, n: usize, p_lcm: usize) -> (usize, usize, usize) {
    let bm = ((m.min(96) / p_lcm).max(1)) * p_lcm;
    let bk = k.clamp(1, 96);
    let bn = n.clamp(1, 192);
    (bm, bk, bn)
}

/// Sweep `threads` over one `m x k x n` f32 GEMM, best-of-`iters` per
/// point. `pin` requests core affinity for each pool (best-effort).
///
/// # Panics
/// Panics if `threads` is empty or any entry does not divide the chosen
/// `bm` (use counts from `{1, 2, 4, 8}`, whose lcm 8 is the default).
pub fn sweep_shape(
    m: usize,
    k: usize,
    n: usize,
    threads: &[usize],
    iters: usize,
    pin: bool,
) -> Vec<ScalePoint> {
    assert!(!threads.is_empty(), "sweep needs at least one thread count");
    let p_lcm = threads.iter().fold(1, |l, &p| lcm(l, p.max(1)));
    let (bm, bk, bn) = fixed_grid_dims(m, k, n, p_lcm);
    let iters = iters.max(1);

    let a = init::random::<f32>(m, k, 1);
    let b = init::random::<f32>(k, n, 2);
    let ukr = cake_kernels::best_kernel::<f32>();

    let mut points = Vec::with_capacity(threads.len());
    let mut base_gflops = None;
    for &p in threads {
        assert!(p > 0 && bm % p == 0, "p = {p} must divide bm = {bm}");
        let shape = CbBlockShape::fixed(p, bm / p, bk, bn);
        let pool = ThreadPool::with_affinity(p, pin);
        let mut ws = GemmWorkspace::<f32>::new();
        let mut c = Matrix::<f32>::zeros(m, n);
        // Warmup sizes the workspace; timed iters then run allocation-free.
        let mut stats =
            execute_with_stats_in(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool, &mut ws);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Instant::now();
            stats = execute_with_stats_in(
                &a.view(),
                &b.view(),
                &mut c.view_mut(),
                &shape,
                &ukr,
                &pool,
                &mut ws,
            );
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let gflops = 2.0 * m as f64 * k as f64 * n as f64 / best / 1e9;
        let base = *base_gflops.get_or_insert(gflops);
        let speedup = gflops / base;
        points.push(ScalePoint {
            p,
            gflops,
            speedup,
            efficiency: speedup / p as f64,
            a_elems: stats.a_elems_loaded,
            b_elems: stats.b_elems_loaded,
            c_elems: stats.c_elems_updated,
            barrier_wait_ns_max: stats.barrier_wait_ns_max,
            barrier_wait_ns_sum: stats.barrier_wait_ns,
            imbalance: stats.compute_imbalance(),
        });
    }
    points
}

/// The CB-block bandwidth claim as a checkable predicate: every swept `p`
/// must have packed/updated exactly the same element counts. `Err` carries
/// a human-readable diff.
pub fn counters_invariant(points: &[ScalePoint]) -> Result<(), String> {
    let Some(first) = points.first() else {
        return Ok(());
    };
    for pt in &points[1..] {
        if (pt.a_elems, pt.b_elems, pt.c_elems) != (first.a_elems, first.b_elems, first.c_elems) {
            return Err(format!(
                "pack counters diverge: p={} moved (A {}, B {}, C {}) but p={} moved \
                 (A {}, B {}, C {})",
                first.p,
                first.a_elems,
                first.b_elems,
                first.c_elems,
                pt.p,
                pt.a_elems,
                pt.b_elems,
                pt.c_elems
            ));
        }
    }
    Ok(())
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 { a } else { gcd(b, a % b) }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_grid_dims_divisible_and_clamped() {
        let (bm, bk, bn) = fixed_grid_dims(512, 512, 512, 8);
        assert_eq!((bm % 8, bm <= 96, bk <= 96, bn <= 192), (0, true, true, true));
        // Tiny problems still produce a nonzero grid.
        let (bm, bk, bn) = fixed_grid_dims(5, 3, 2, 8);
        assert!(bm >= 8 && bk == 3 && bn == 2, "got {bm} {bk} {bn}");
    }

    #[test]
    fn sweep_reports_baseline_speedup_of_one_and_invariant_counters() {
        let points = sweep_shape(64, 48, 64, &[1, 2, 4], 1, false);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].p, 1);
        assert!((points[0].speedup - 1.0).abs() < 1e-12);
        assert!((points[0].efficiency - 1.0).abs() < 1e-12);
        for pt in &points {
            assert!(pt.gflops > 0.0);
            assert!(pt.imbalance >= 1.0, "imbalance {} below floor", pt.imbalance);
            assert!(pt.barrier_wait_ns_max <= pt.barrier_wait_ns_sum);
        }
        // The bandwidth claim: identical element movement at every p. The
        // counters are live here (cake-verify enables traffic-counters).
        assert!(points[0].a_elems > 0, "counters should be compiled in");
        counters_invariant(&points).expect("fixed-grid sweep must move identical elements");
    }

    #[test]
    fn divergent_counters_are_reported() {
        let mut points = sweep_shape(32, 32, 32, &[1, 2], 1, false);
        points[1].b_elems += 1;
        let err = counters_invariant(&points).unwrap_err();
        assert!(err.contains("diverge"), "{err}");
    }
}
