//! On-host autotune refinement: the micro-bench stage of the tuning loop.
//!
//! `cake_core::tune` generates the deterministic candidate grid and
//! `cake_sim::search::autotune` ranks it on a host-shaped simulator
//! config; this module closes the loop by re-measuring the simulator's
//! top-K candidates (plus the closed-form default) with short real GEMM
//! runs and recording the measured winner in the persistent
//! [`TuneTable`]. The default always competes in the measured round, so
//! the recorded winner is **never slower than the closed form on this
//! host** — a cache hit through `CakeConfig::autotuned_for` can only
//! help.

use cake_core::api::{CakeConfig, CakeGemm};
use cake_core::shape::CbBlockShape;
use cake_core::tune::{TuneTable, TunedEntry};
use cake_kernels::select::KernelSelect;
use cake_kernels::KernelTier;
use cake_matrix::Matrix;
use cake_sim::config::CpuConfig;
use cake_sim::search::{autotune as sim_autotune, ScoredCandidate};

/// One measured tuning candidate.
#[derive(Debug, Clone)]
pub struct MeasuredCandidate {
    /// Kernel tier the run dispatched through.
    pub tier: KernelTier,
    /// The block shape measured.
    pub shape: CbBlockShape,
    /// Simulator GFLOP/s that promoted it into the top-K (0 for the
    /// closed-form default, which enters unconditionally).
    pub sim_gflops: f64,
    /// Measured on-host GFLOP/s (best of the timed reps).
    pub gflops: f64,
    /// Whether this row *is* the closed-form default shape.
    pub is_default: bool,
}

/// Everything one [`autotune_shape`] run learned.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The winner, ready for [`TuneTable::insert`].
    pub entry: TunedEntry,
    /// The closed-form default's measured GFLOP/s (the baseline the
    /// winner must beat or match).
    pub default_gflops: f64,
    /// The default's resolved shape.
    pub default_shape: CbBlockShape,
    /// Every measured candidate, best first (default included).
    pub candidates: Vec<MeasuredCandidate>,
    /// Simulator evaluations spent ranking the full candidate grid.
    pub sim_evaluations: usize,
}

impl TuneOutcome {
    /// Winner's measured speedup over the closed-form default (>= 1.0 by
    /// construction).
    pub fn speedup(&self) -> f64 {
        self.entry.gflops / self.default_gflops.max(1e-12)
    }
}

/// Knobs for one tuning run; `Default` suits CI smoke tests.
#[derive(Debug, Clone, Copy)]
pub struct TuneOptions {
    /// Simulator leaders to re-measure on the host.
    pub top_k: usize,
    /// Timed repetitions per measured candidate (after one warmup).
    pub reps: usize,
    /// Per-core L2 budget fed to candidate generation and the host sim
    /// config.
    pub l2_bytes: usize,
    /// Shared-LLC budget (the `--llc-mib` knob).
    pub llc_bytes: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        let d = CakeConfig::default();
        Self {
            top_k: 4,
            reps: 3,
            l2_bytes: d.l2_bytes,
            llc_bytes: d.llc_bytes,
        }
    }
}

/// Run the full tuning loop for one `(m, k, n, dtype, p)` point:
/// sim-rank the candidate grid on [`CpuConfig::detected_host`], micro-bench
/// the top-K the host can actually dispatch, and return the measured
/// winner (the closed-form default when nothing beats it).
pub fn autotune_shape<T: KernelSelect>(
    m: usize,
    k: usize,
    n: usize,
    p: usize,
    opts: TuneOptions,
) -> TuneOutcome {
    assert!(m > 0 && k > 0 && n > 0 && p > 0, "degenerate tune point");
    let host = CpuConfig::detected_host(opts.l2_bytes, opts.llc_bytes);
    let scored = sim_autotune(&host, m, k, n, T::NAME, p, T::BYTES);
    let sim_evaluations = scored.len();

    // The closed-form baseline this host would use without a cache entry.
    let base_cfg = CakeConfig {
        l2_bytes: opts.l2_bytes,
        ..CakeConfig::tuned_for(p, opts.llc_bytes)
    };
    let default_ukr = base_cfg.selected_kernel::<T>();
    let default_shape = base_cfg.explain_shape_for::<T>(m, k, n).shape;
    let default_tier = tier_of(default_ukr.name());

    // Candidates this host can dispatch at this dtype, skipping any that
    // resolve to the default shape (it is measured anyway).
    let dispatchable: Vec<&ScoredCandidate> = scored
        .iter()
        .filter(|s| cake_kernels::tier_kernel::<T>(s.cand.tier).is_some())
        .filter(|s| !(s.cand.shape == default_shape && s.cand.tier == default_tier))
        .collect();
    // The measured round hedges the simulator's model error: half the
    // leaders are the sim's top picks, the rest the largest-footprint
    // candidates — the event model under-credits LLC-resident reuse, so
    // big blocks that pack each operand close to once routinely measure
    // faster than their sim rank suggests. Deterministic either way.
    let sim_half = opts.top_k.div_ceil(2).min(dispatchable.len());
    let mut leaders: Vec<&ScoredCandidate> = dispatchable[..sim_half].to_vec();
    let mut by_footprint: Vec<&ScoredCandidate> = dispatchable[sim_half..].to_vec();
    by_footprint.sort_by(|x, y| {
        let vol = |s: &ScoredCandidate| s.cand.shape.mc * s.cand.shape.kc * s.cand.shape.nc;
        vol(y).cmp(&vol(x)).then(x.cand.tier.cmp(&y.cand.tier))
    });
    leaders.extend(by_footprint.into_iter().take(opts.top_k - sim_half));

    let a = gen_operand::<T>(m, k, 1);
    let b = gen_operand::<T>(k, n, 2);
    let reps = opts.reps.max(1);

    let default_gflops = measure::<T>(&base_cfg, &a, &b, reps);
    let mut candidates = vec![MeasuredCandidate {
        tier: default_tier,
        shape: default_shape,
        sim_gflops: 0.0,
        gflops: default_gflops,
        is_default: true,
    }];
    for s in leaders {
        let cfg = CakeConfig {
            fixed_shape: Some(s.cand.shape),
            kernel_tier: Some(s.cand.tier),
            ..base_cfg.clone()
        };
        candidates.push(MeasuredCandidate {
            tier: s.cand.tier,
            shape: cfg.explain_shape_for::<T>(m, k, n).shape,
            sim_gflops: s.gflops,
            gflops: measure::<T>(&cfg, &a, &b, reps),
            is_default: false,
        });
    }
    candidates.sort_by(|x, y| y.gflops.total_cmp(&x.gflops));

    // Honest fallback: the winner is the default unless a candidate
    // measured strictly faster, so `tuned >= default` holds by
    // construction.
    let winner = candidates
        .iter()
        .find(|c| c.gflops > default_gflops)
        .cloned()
        .unwrap_or_else(|| candidates.iter().find(|c| c.is_default).cloned().expect("default measured"));
    let entry = TunedEntry {
        m,
        k,
        n,
        dtype: T::NAME.to_string(),
        p,
        mc: winner.shape.mc,
        kc: winner.shape.kc,
        nc: winner.shape.nc,
        tier: winner.tier.name().to_string(),
        gflops: winner.gflops,
    };
    TuneOutcome {
        entry,
        default_gflops,
        default_shape,
        candidates,
        sim_evaluations,
    }
}

/// [`autotune_shape`], then record the winner in `table`.
pub fn autotune_into_table<T: KernelSelect>(
    table: &mut TuneTable,
    m: usize,
    k: usize,
    n: usize,
    p: usize,
    opts: TuneOptions,
) -> TuneOutcome {
    let outcome = autotune_shape::<T>(m, k, n, p, opts);
    table.insert(outcome.entry.clone());
    outcome
}

/// Kernel tier from a registered kernel name (`"avx2_f32_6x16"` ->
/// `Avx2`); names always lead with the tier.
pub fn tier_of(kernel_name: &str) -> KernelTier {
    kernel_name
        .split('_')
        .next()
        .and_then(KernelTier::parse)
        .unwrap_or(KernelTier::Portable)
}

/// Deterministic operand for dtype `T`; values are irrelevant to timing,
/// so every dtype takes the standard uniform fill.
fn gen_operand<T: KernelSelect>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    cake_matrix::init::random::<T>(rows, cols, seed)
}

/// Best-of-`reps` GFLOP/s of `C += A * B` through `cfg` (one warmup call
/// sizes the pool and workspace first).
fn measure<T: KernelSelect>(
    cfg: &CakeConfig,
    a: &Matrix<T>,
    b: &Matrix<T>,
    reps: usize,
) -> f64 {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let ctx = CakeGemm::new(cfg.clone());
    let mut c = Matrix::<T::Acc>::zeros(m, n);
    ctx.gemm(a, b, &mut c); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        ctx.gemm(a, b, &mut c);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    2.0 * (m as f64) * (k as f64) * (n as f64) / best.max(1e-12) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_never_loses_to_default() {
        let opts = TuneOptions {
            top_k: 2,
            reps: 1,
            ..TuneOptions::default()
        };
        let out = autotune_shape::<f32>(96, 96, 96, 1, opts);
        assert!(out.entry.gflops >= out.default_gflops, "winner regressed");
        assert!(out.speedup() >= 1.0);
        assert_eq!(out.entry.dtype, "f32");
        assert!(out.sim_evaluations > 0);
        // The default always competed.
        assert!(out.candidates.iter().any(|c| c.is_default));
        // Winner is recorded with a dispatchable tier.
        assert!(cake_kernels::tier_kernel::<f32>(tier_of(&format!(
            "{}_x",
            out.entry.tier
        )))
        .is_some());
    }

    #[test]
    fn table_records_the_winner() {
        let mut table = TuneTable::default();
        let opts = TuneOptions {
            top_k: 1,
            reps: 1,
            ..TuneOptions::default()
        };
        let out = autotune_into_table::<i8>(&mut table, 64, 64, 64, 1, opts);
        let hit = table.lookup(64, 64, 64, "int8", 1).expect("recorded");
        assert_eq!(*hit, out.entry);
    }

    #[test]
    fn tier_of_parses_registered_names() {
        assert_eq!(tier_of("portable_f32_8x8"), KernelTier::Portable);
        assert_eq!(tier_of("avx2_bf16_4x8"), KernelTier::Avx2);
        assert_eq!(tier_of("avx512_vnni_i8_16x16"), KernelTier::Avx512);
        assert_eq!(tier_of("mystery"), KernelTier::Portable);
    }
}
