//! `cakectl` — command-line front end to the CAKE analysis tools.
//!
//! ```text
//! cakectl shape    --cpu intel|amd|arm --p P [--m M --k K --n N] [--alpha A]
//! cakectl sim      --cpu intel|amd|arm --p P --m M --k K --n N [--algo cake|goto]
//!                  [--fuzz-orderings N] [--trace] (`simulate` is an alias)
//! cakectl search   --cpu intel|amd|arm --p P --n N [--steps S]
//! cakectl tune     --m M --k K --n N [--p P] [--dtype f32|f64|bf16|int8]
//!                  [--top-k K] [--reps R] [--l2-kib KIB] [--llc-mib MIB]
//!                  [--cache PATH] [--no-save] [--check]
//! cakectl traffic  --m M --k K --n N --bm BM --bk BK --bn BN [--policy hold|stream]
//!                  [--dtype f32|f64|bf16|int8]
//! cakectl gemm     --m M --k K --n N [--p P] [--iters I] [--stats] [--pin]
//!                  [--explain] [--llc-mib MIB] [--kernel portable|avx2|avx512]
//!                  [--dtype f32|f64|bf16|int8]
//!                  [--threads P | --threads P1,P2,...] [--check-counters]
//!                  [--kernel-smoke] [--dtype-smoke]
//! cakectl verify   [--cases C] [--seed S]
//! cakectl audit    [--bless] [--root DIR] [--only-scan] [--only-bounds]
//!                  [--only-phase] [--only-alloc] [--only-panic] [--only-atomics]
//! ```
//!
//! Everything the paper derives analytically, queryable from the shell —
//! plus `gemm`, which runs the *real* pipelined executor and (with
//! `--stats`) prints its measured [`ExecStats`]: per-phase pack / compute /
//! barrier-wait time (sum and slowest-worker max), compute imbalance,
//! requested vs effective worker count, host cores, barrier mode,
//! workspace footprint, allocations, and reuse skips. `--pin` pins workers
//! to cores (Linux; best-effort elsewhere). `--explain` prints the
//! auto-tuner's full paper trail before running: the chosen `(mc, kc, nc)`,
//! `alpha` and its source, the L2/LLC-LRU bounds that clamped `mc`, the
//! topology clamp from requested to effective `p`, and the barrier mode —
//! each with the reason it was chosen.
//!
//! `--kernel TIER` caps the dispatch tier (`portable`, `avx2`, `avx512`)
//! by setting `CAKE_KERNEL` before any selection happens — the A/B lever
//! for comparing tiers on one host. A tier the host lacks falls down the
//! ladder (avx512 → avx2 → portable) rather than failing.
//!
//! `--dtype` selects the GEMM element type: `f32` (default), `f64`, or the
//! narrow tier — `int8` (i8 operands, i32 accumulate) and `bf16` (bf16
//! operands, f32 accumulate). The result line, `--stats`, and `--explain`
//! all surface the dtype and the per-dtype kernel the ladder dispatched.
//! For `traffic`, `--dtype` sizes the byte totals (operands at the element
//! width, C surfaces at the accumulator width).
//!
//! `--threads` switches `gemm` into a strong-scaling sweep on a fixed
//! block grid (one `p` per comma-separated entry — a single entry is a
//! one-row sweep): per-`p` GFLOP/s, speedup over the first entry, scaling
//! efficiency, effective worker count after the topology clamp, and
//! pack-element counters. `--check-counters` exits 1 if the counters
//! differ across `p`, or if a point with real core headroom
//! (`cores >= 2p`, unclamped) fails to beat the single-core baseline —
//! the CB-block bandwidth and scaling claims as a CI gate
//! (`ci.sh --scale-smoke`).
//!
//! `--kernel-smoke` runs one single-threaded GEMM per kernel tier the host
//! supports on one fixed block grid and exits 1 unless the traffic
//! counters are identical across tiers — live element movement is a
//! property of the block schedule, never of the register tile
//! (`ci.sh --kernel-smoke`).
//!
//! `--dtype-smoke` is the dtype counterpart: one single-threaded GEMM per
//! supported dtype (f32, f64, bf16, int8) on one fixed block grid, each
//! through its own best-tier kernel. Exits 1 unless (a) the *element*
//! counters are identical across dtypes — element movement is a schedule
//! property; only bytes-per-element changes — and (b) every dtype's timed
//! iterations ran allocation-free, the zero-alloc warm-path guarantee
//! extended to the narrow tier (`ci.sh --dtype-smoke`).
//!
//! `tune` runs the full autotuning loop for one `(m, k, n, dtype, p)`
//! point: a deterministic candidate grid per kernel tier
//! (`cake_core::tune::candidate_points`), ranked by the event-driven
//! simulator on a host-shaped CPU config
//! (`cake_sim::search::autotune` over `CpuConfig::detected_host`), with
//! the top-K leaders re-measured by short on-host GEMM runs alongside the
//! closed-form default. The measured winner — never slower than the
//! default, which always competes — is cached in `target/cake-tune.json`
//! (or `--cache` / `$CAKE_TUNE_CACHE`), where
//! `CakeConfig::autotuned_for(m, k, n, dtype, p)` picks it up. `--check`
//! exits 1 unless the winner is at least the default AND the cache
//! round-trips through `autotuned_for` (`ci.sh --tune-smoke`).
//!
//! `verify` runs the full `cake-verify` harness: the differential fuzzer
//! (default 256 cases; `--seed` or `CAKE_TEST_SEED` perturbs the stream),
//! the model-conformance oracle, and the deterministic interleaving
//! checker. Exit status 1 on any failure.
//!
//! `audit` runs the in-tree static analyses (`cake-audit`): the unsafe
//! inventory against the committed `unsafe-ratchet.toml` (with transmute
//! and `static mut` ratchets), the symbolic bounds prover over every
//! raw-pointer offset site (proof report written to
//! `target/cake-audit/bounds.json`), the executor phase checker, and the
//! call-graph dataflow passes — warm-path alloc-freedom, hot-path
//! panic-freedom, and the atomics-ordering checker (aggregate report
//! written to `target/cake-audit/audit.json`). Each pass prints its own
//! `PASS`/`FAIL` verdict line; the exit status is computed over every
//! selected pass (no short-circuiting), 1 on any violation.
//!
//! `--only-scan`, `--only-bounds`, `--only-phase`, `--only-alloc`,
//! `--only-panic`, `--only-atomics` restrict the run to the named passes
//! (repeatable; default is all six). `--bless` regenerates the ratchet
//! from the current tree before checking.

use cake_bench::output::{arg_value, has_flag, render_table};
use cake_bench::scaling::{
    counters_invariant, dtype_counters_invariant, kernel_counters_invariant, scaling_sane,
    sweep_dtypes, sweep_kernels, sweep_shape,
};
use cake_core::api::{CakeConfig, CakeGemm};
use cake_core::executor::ExecStats;
use cake_core::model::CakeModel;
use cake_core::schedule::{BlockGrid, KFirstSchedule};
use cake_core::traffic::{dram_traffic, CResidency, TrafficParams};
use cake_sim::config::CpuConfig;
use cake_sim::engine::{resolve_cake_shape, simulate_cake, simulate_goto, SimParams};
use cake_sim::search::{analytic_point, grid_search};

fn cpu_by_name(name: &str) -> CpuConfig {
    CpuConfig::by_name(name).unwrap_or_else(|| {
        eprintln!(
            "unknown cpu '{name}' (expected {})",
            CpuConfig::table2_names().join("|")
        );
        std::process::exit(2);
    })
}

fn req_usize(key: &str) -> usize {
    match arg_value(key).and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("missing or invalid {key}");
            std::process::exit(2);
        }
    }
}

fn opt_usize(key: &str, default: usize) -> usize {
    arg_value(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn cmd_shape() {
    let cpu = cpu_by_name(&arg_value("--cpu").unwrap_or_else(|| "intel".into()));
    let p = opt_usize("--p", cpu.cores);
    let mut sp = SimParams::new(
        opt_usize("--m", 1 << 20),
        opt_usize("--k", 1 << 20),
        opt_usize("--n", 1 << 20),
        p,
    );
    sp.alpha = arg_value("--alpha").and_then(|v| v.parse().ok());
    let shape = resolve_cake_shape(&cpu, &sp);
    let model = CakeModel::with_mac_rate(
        shape,
        cpu.mr,
        cpu.nr,
        sp.elem_bytes,
        cpu.freq_ghz,
        cpu.macs_per_cycle_f32,
    );
    println!("CPU: {} ({} cores used)", cpu.name, p);
    println!("CB block: {shape}");
    println!("  A surface: {:>12} elements", shape.a_surface());
    println!("  B surface: {:>12} elements", shape.b_surface());
    println!("  C surface: {:>12} elements", shape.c_surface());
    println!("  fits LRU rule (C + 2(A+B) <= LLC): {}", shape.fits_llc_lru(cpu.llc_bytes, 4));
    println!("Model (Eqs. 4/5/6):");
    println!("  required DRAM bandwidth: {:>8.2} GB/s (constant in p)", model.ext_bw_gbs());
    println!("  local memory footprint : {:>8.2} MiB", model.local_mem_bytes() / 1048576.0);
    println!("  internal bandwidth     : {:>8.2} GB/s", model.int_bw_gbs());
    println!("  peak throughput        : {:>8.2} GFLOP/s", model.peak_gflops());
}

fn cmd_sim() {
    use cake_sim::engine::{check_ordering_invariance, simulate_traced, Algo, SimOptions};
    let cpu = cpu_by_name(&arg_value("--cpu").unwrap_or_else(|| "intel".into()));
    let p = opt_usize("--p", cpu.cores);
    let sp = SimParams::new(req_usize("--m"), req_usize("--k"), req_usize("--n"), p);
    let algo = match arg_value("--algo").unwrap_or_else(|| "cake".into()).as_str() {
        "cake" => Algo::Cake,
        "goto" => Algo::Goto,
        other => {
            eprintln!("unknown algo '{other}' (expected cake|goto)");
            std::process::exit(2);
        }
    };
    let rep = match algo {
        Algo::Cake => simulate_cake(&cpu, &sp),
        Algo::Goto => simulate_goto(&cpu, &sp),
    };
    println!("{}", cpu.name);
    println!("{rep}");
    println!("  simulated time : {:.4} ms", rep.seconds * 1e3);
    println!("  DRAM traffic   : {:.1} MiB", rep.dram_bytes as f64 / 1048576.0);
    println!("  steps / events : {} / {}", rep.steps, rep.events);

    if has_flag("--trace") {
        let (_, trace) = simulate_traced(&cpu, &sp, algo, SimOptions::default());
        println!("event trace (last {} events retained):", trace.len());
        for ev in &trace {
            println!("  {ev}");
        }
    }

    if let Some(n) = arg_value("--fuzz-orderings") {
        let seeds: u64 = n.parse().unwrap_or(64);
        match check_ordering_invariance(&cpu, &sp, algo, seeds) {
            Ok(checked) => {
                println!(
                    "ordering invariance: {checked} fuzzed same-tick orderings, \
                     all traffic/result counters bit-identical"
                );
            }
            Err(div) => {
                eprintln!("ORDERING DIVERGENCE (schedule race):\n{div}");
                std::process::exit(1);
            }
        }
    }
}

fn cmd_search() {
    let cpu = cpu_by_name(&arg_value("--cpu").unwrap_or_else(|| "intel".into()));
    let p = opt_usize("--p", cpu.cores);
    let n = req_usize("--n");
    let steps = opt_usize("--steps", 5);
    if steps < 2 {
        eprintln!(
            "--steps must be >= 2 (got {steps}): the search grid needs at least two \
             points per axis\nusage: cakectl search --cpu intel|amd|arm --p P --n N [--steps S]"
        );
        std::process::exit(2);
    }
    let res = grid_search(&cpu, n, p, steps);
    let analytic = analytic_point(&cpu, n, p);

    let mut rows: Vec<Vec<String>> = res
        .points
        .iter()
        .enumerate()
        .map(|(i, pt)| {
            vec![
                format!("{}", pt.shape),
                format!("{:.3}", pt.seconds * 1e3),
                format!("{:.2}", pt.gflops),
                format!("{:.2}", pt.dram_bw_gbs),
                if pt.fits_llc { "yes" } else { "NO" }.into(),
                if i == res.best { "<= best" } else { "" }.into(),
            ]
        })
        .collect();
    rows.push(vec![
        format!("{} (analytic)", analytic.shape),
        format!("{:.3}", analytic.seconds * 1e3),
        format!("{:.2}", analytic.gflops),
        format!("{:.2}", analytic.dram_bw_gbs),
        if analytic.fits_llc { "yes" } else { "NO" }.into(),
        "closed-form".into(),
    ]);
    println!(
        "Design search on {} ({} cores, {n}^3): {} evaluations\n",
        cpu.name,
        p,
        res.evaluations()
    );
    println!(
        "{}",
        render_table(
            &["shape", "sim ms", "GFLOP/s", "DRAM GB/s", "fits", ""],
            &rows
        )
    );
    println!(
        "analytic vs searched-best time: x{:.3}",
        analytic.seconds / res.best_point().seconds
    );
}

fn cmd_tune() {
    use cake_bench::tune::{autotune_into_table, TuneOptions, TuneOutcome};
    use cake_core::tune::TuneTable;

    let (m, k, n) = (req_usize("--m"), req_usize("--k"), req_usize("--n"));
    if m == 0 || k == 0 || n == 0 {
        eprintln!(
            "--m/--k/--n must be >= 1 (got {m}x{k}x{n}): there is nothing to tune on an \
             empty problem\n\
             usage: cakectl tune --m M --k K --n N [--dtype f32|f64|bf16|int8] [--p P] \
             [--top-k K] [--reps R] [--l2-kib KIB] [--llc-mib MIB] [--cache PATH] \
             [--no-save] [--check]"
        );
        std::process::exit(2);
    }
    let p = opt_usize("--p", 1);
    let dtype = arg_value("--dtype").unwrap_or_else(|| "f32".into());
    let opts = TuneOptions {
        top_k: opt_usize("--top-k", 4),
        reps: opt_usize("--reps", 3).max(1),
        l2_bytes: opt_usize("--l2-kib", CakeConfig::default().l2_bytes >> 10) << 10,
        llc_bytes: opt_usize("--llc-mib", CakeConfig::default().llc_bytes >> 20) << 20,
    };
    let cache = arg_value("--cache")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(TuneTable::default_path);

    let mut table = TuneTable::load(&cache).unwrap_or_default();
    let out: TuneOutcome = match dtype.as_str() {
        "f32" => autotune_into_table::<f32>(&mut table, m, k, n, p, opts),
        "f64" => autotune_into_table::<f64>(&mut table, m, k, n, p, opts),
        "int8" => autotune_into_table::<i8>(&mut table, m, k, n, p, opts),
        "bf16" => autotune_into_table::<cake_matrix::Bf16>(&mut table, m, k, n, p, opts),
        other => {
            eprintln!("unknown --dtype '{other}' (expected f32|f64|bf16|int8)");
            std::process::exit(2);
        }
    };

    let rows: Vec<Vec<String>> = out
        .candidates
        .iter()
        .map(|c| {
            let marker = match (c.shape == out.entry.shape() && c.tier.name() == out.entry.tier,
                                c.is_default) {
                (true, true) => "<= winner (default held)",
                (true, false) => "<= winner",
                (false, true) => "closed-form default",
                _ => "",
            };
            vec![
                format!("{}", c.shape),
                c.tier.name().into(),
                if c.sim_gflops > 0.0 { format!("{:.2}", c.sim_gflops) } else { "-".into() },
                format!("{:.2}", c.gflops),
                marker.into(),
            ]
        })
        .collect();
    println!(
        "Autotune {m}x{k}x{n} dtype {dtype} p={p}: {} simulator evaluations, \
         {} measured (best of {} reps)\n",
        out.sim_evaluations,
        out.candidates.len(),
        opts.reps
    );
    println!(
        "{}",
        render_table(&["shape", "tier", "sim GF/s", "meas GF/s", ""], &rows)
    );
    println!(
        "winner: mc={} kc={} nc={} tier={} at {:.2} GFLOP/s \
         (default {:.2}, x{:.3})",
        out.entry.mc, out.entry.kc, out.entry.nc,
        out.entry.tier, out.entry.gflops, out.default_gflops, out.speedup()
    );

    if !has_flag("--no-save") {
        if let Err(e) = table.save(&cache) {
            eprintln!("failed to save tune cache {}: {e}", cache.display());
            std::process::exit(1);
        }
        println!("cached -> {}", cache.display());
    }

    if has_flag("--check") {
        // CI gate: tuned >= default, and the cache round-trips through
        // the public `autotuned_for` loader.
        if out.entry.gflops + 1e-9 < out.default_gflops {
            eprintln!(
                "tune check FAILED: winner {:.2} GFLOP/s below default {:.2}",
                out.entry.gflops, out.default_gflops
            );
            std::process::exit(1);
        }
        std::env::set_var("CAKE_TUNE_CACHE", &cache);
        let cfg = CakeConfig::autotuned_for(m, k, n, &dtype, p);
        std::env::remove_var("CAKE_TUNE_CACHE");
        if cfg.fixed_shape != Some(out.entry.shape()) {
            eprintln!(
                "tune check FAILED: cache round trip resolved {:?}, expected {}",
                cfg.fixed_shape,
                out.entry.shape()
            );
            std::process::exit(1);
        }
        println!("tune check: winner >= default and cache round-trips through autotuned_for: OK");
    }
}

fn cmd_traffic() {
    let tp = TrafficParams {
        m: req_usize("--m"),
        k: req_usize("--k"),
        n: req_usize("--n"),
        bm: req_usize("--bm"),
        bk: req_usize("--bk"),
        bn: req_usize("--bn"),
    };
    let policy = match arg_value("--policy").as_deref() {
        Some("stream") => CResidency::StreamToDram,
        _ => CResidency::HoldInLlc,
    };
    let grid = BlockGrid::for_problem(tp.m, tp.k, tp.n, tp.bm, tp.bk, tp.bn);
    let t = dram_traffic(KFirstSchedule::new(grid, tp.m, tp.n), tp, policy);
    let dtype = arg_value("--dtype").unwrap_or_else(|| "f32".into());
    let bytes = match dtype.as_str() {
        "f32" => t.total_bytes_for::<f32>(),
        "f64" => t.total_bytes_for::<f64>(),
        "int8" => t.total_bytes_for::<i8>(),
        "bf16" => t.total_bytes_for::<cake_matrix::Bf16>(),
        other => {
            eprintln!("unknown --dtype '{other}' (expected f32|f64|bf16|int8)");
            std::process::exit(2);
        }
    };
    println!("K-first snake schedule over {}x{}x{} blocks ({policy:?})", grid.mb, grid.kb, grid.nb);
    println!("  A loads          : {:>14} elements", t.a_loads);
    println!("  B loads          : {:>14} elements", t.b_loads);
    println!("  C final writes   : {:>14} elements", t.c_final_writes);
    println!("  C partial writes : {:>14} elements", t.c_partial_writes);
    println!("  C partial reads  : {:>14} elements", t.c_partial_reads);
    println!(
        "  total            : {:>14} elements ({:.1} MiB as {dtype})",
        t.total(),
        bytes as f64 / 1048576.0
    );
}

fn print_exec_stats(s: &ExecStats) {
    let busy = (s.pack_ns + s.compute_ns + s.barrier_wait_ns).max(1) as f64;
    println!("Executor stats (pipelined, measured):");
    println!("  kernel           : {:>12}  (dispatch tier for this run)", s.kernel);
    println!("  CB blocks        : {:>12}", s.blocks);
    println!(
        "  workers          : {:>12}  (requested {}, host has {} core(s))",
        s.workers, s.requested_workers, s.host_cores
    );
    println!(
        "  barrier mode     : {:>12}  (park iff workers > cores)",
        s.barrier_mode.as_str()
    );
    println!("  barrier waits    : {:>12}  (1 rotation barrier per block)", s.barriers);
    println!("  A packs skipped  : {:>12}", s.a_packs_skipped);
    println!("  B packs skipped  : {:>12}", s.b_packs_skipped);
    println!("  B panel hits     : {:>12}  (ring held a revisited surface)", s.b_panel_hits);
    println!(
        "  pack time        : {:>9.3} ms  ({:>5.1}% of busy, worker max {:.3} ms)",
        s.pack_ns as f64 / 1e6,
        s.pack_ns as f64 / busy * 100.0,
        s.pack_ns_max as f64 / 1e6
    );
    println!(
        "  compute time     : {:>9.3} ms  ({:>5.1}% of busy, worker max {:.3} / min {:.3} ms)",
        s.compute_ns as f64 / 1e6,
        s.compute_ns as f64 / busy * 100.0,
        s.compute_ns_max as f64 / 1e6,
        s.compute_ns_min as f64 / 1e6
    );
    println!(
        "  barrier wait sum : {:>9.3} ms  ({:>5.1}% of busy)",
        s.barrier_wait_ns as f64 / 1e6,
        s.barrier_wait_ns as f64 / busy * 100.0
    );
    println!(
        "  barrier wait max : {:>9.3} ms  (slowest single worker)",
        s.barrier_wait_ns_max as f64 / 1e6
    );
    println!(
        "  compute imbalance: {:>10.3}  (max * workers / sum; 1.0 = even)",
        s.compute_imbalance()
    );
    println!(
        "  overlap efficiency: {:>10.3}  (1.0 = packing fully hidden)",
        cake_core::tune::overlap_efficiency(s.pack_ns, s.compute_ns)
    );
    println!("  workspace        : {:>9.1} KiB", s.workspace_bytes as f64 / 1024.0);
    println!("  allocations      : {:>12}  (this call)", s.allocations);
    // Element counters are live only with cake-core's `traffic-counters`
    // feature (enabled here transitively through cake-verify).
    if s.a_elems_loaded + s.b_elems_loaded + s.c_elems_updated > 0 {
        println!("  A elems loaded   : {:>12}", s.a_elems_loaded);
        println!("  B elems loaded   : {:>12}", s.b_elems_loaded);
        println!("  C elems updated  : {:>12}", s.c_elems_updated);
    }
}

fn cmd_verify() {
    let cases = opt_usize("--cases", 256) as u32;
    let seed = arg_value("--seed").and_then(|v| v.parse::<u64>().ok());
    println!("cake-verify: {cases} fuzz cases, conformance oracle, interleaving checker");
    match cake_verify::verify_all(cases, seed) {
        Ok(outcomes) => {
            for o in outcomes {
                println!("[{}] PASS", o.name);
                for line in o.lines {
                    println!("    {line}");
                }
            }
            println!("verification suite passed");
        }
        Err(msg) => {
            eprintln!("verification FAILED:\n{msg}");
            std::process::exit(1);
        }
    }
}

fn cmd_audit() {
    let root = match arg_value("--root").map(std::path::PathBuf::from) {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
            match cake_audit::find_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!("no workspace Cargo.toml above {}; pass --root", cwd.display());
                    std::process::exit(2);
                }
            }
        }
    };
    // `--only-<pass>` flags are additive over an empty selection; with no
    // flag every pass runs.
    type PassFlag = (&'static str, fn(&mut cake_audit::PassSelection));
    let only: &[PassFlag] = &[
        ("--only-scan", |p| p.scan = true),
        ("--only-bounds", |p| p.bounds = true),
        ("--only-phase", |p| p.phase = true),
        ("--only-alloc", |p| p.alloc = true),
        ("--only-panic", |p| p.panic = true),
        ("--only-atomics", |p| p.atomics = true),
    ];
    let mut passes = cake_audit::PassSelection::none();
    for (flag, enable) in only {
        if has_flag(flag) {
            enable(&mut passes);
        }
    }
    if !passes.any() {
        passes = cake_audit::PassSelection::all();
    }
    let cfg = cake_audit::AuditConfig {
        root: root.clone(),
        bless: has_flag("--bless"),
        passes,
    };
    let outcome = match cake_audit::run(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("audit failed to run: {e}");
            std::process::exit(2);
        }
    };
    // Machine-readable reports for tooling; failures here are not audit
    // violations (the summary already carries the verdict).
    let report_dir = root.join("target/cake-audit");
    if std::fs::create_dir_all(&report_dir).is_ok() {
        if let Some(bounds) = &outcome.bounds {
            let _ = std::fs::write(report_dir.join("bounds.json"), bounds.to_json());
        }
        let _ = std::fs::write(report_dir.join("audit.json"), outcome.to_json());
    }
    for line in outcome.summary_lines() {
        println!("{line}");
    }
    // Aggregate the exit status over every selected pass explicitly —
    // each report was fully computed above, so one failing pass never
    // masks another's output, and the verdict covers them all.
    let pass_results = [
        outcome.scan.as_ref().map(|r| r.violations.is_empty()),
        outcome.bounds.as_ref().map(|r| r.ok()),
        outcome.phase.as_ref().map(|r| r.ok()),
        outcome.alloc.as_ref().map(|r| r.ok()),
        outcome.panic.as_ref().map(|r| r.ok()),
        outcome.atomics.as_ref().map(|r| r.ok()),
    ];
    let all_ok = pass_results.iter().all(|r| r.unwrap_or(true)) && outcome.self_check.is_empty();
    if !all_ok {
        std::process::exit(1);
    }
}

fn cmd_gemm() {
    let (m, k, n) = (req_usize("--m"), req_usize("--k"), req_usize("--n"));
    let iters = opt_usize("--iters", 3).max(1);
    let pin = has_flag("--pin");

    // Tier cap for A/B runs: exported before any kernel selection so every
    // best_kernel call below (and in the sweeps) honors it.
    if let Some(tier) = arg_value("--kernel") {
        if cake_kernels::KernelTier::parse(&tier).is_none() {
            eprintln!("unknown --kernel '{tier}' (expected portable|avx2|avx512)");
            std::process::exit(2);
        }
        std::env::set_var("CAKE_KERNEL", &tier);
    }

    if has_flag("--kernel-smoke") {
        let points = sweep_kernels(m, k, n, iters);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|pt| {
                vec![
                    pt.tier.name().into(),
                    pt.kernel.into(),
                    format!("{}x{}", pt.mr, pt.nr),
                    format!("{:.2}", pt.gflops),
                    pt.a_elems.to_string(),
                    pt.b_elems.to_string(),
                    pt.c_elems.to_string(),
                ]
            })
            .collect();
        println!("GEMM {m}x{k}x{n} kernel-tier smoke (fixed block grid, p = 1, best of {iters}):\n");
        println!(
            "{}",
            render_table(
                &["tier", "kernel", "mr x nr", "GFLOP/s", "A elems", "B elems", "C elems"],
                &rows
            )
        );
        match kernel_counters_invariant(&points) {
            Ok(()) => println!("pack counters invariant across kernel tiers: OK"),
            Err(msg) => {
                eprintln!("kernel-tier counter invariance FAILED: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    if has_flag("--dtype-smoke") {
        let points = sweep_dtypes(m, k, n, iters);
        let f32_gops = points.iter().find(|pt| pt.dtype == "f32").map_or(0.0, |pt| pt.gops);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|pt| {
                vec![
                    pt.dtype.into(),
                    pt.kernel.into(),
                    format!("{}B/{}B", pt.elem_bytes, pt.acc_bytes),
                    format!("{:.2}", pt.gops),
                    format!("{:.2}x", pt.gops / f32_gops.max(1e-12)),
                    pt.allocs_after_warmup.to_string(),
                    pt.a_elems.to_string(),
                    pt.b_elems.to_string(),
                    pt.c_elems.to_string(),
                ]
            })
            .collect();
        println!("GEMM {m}x{k}x{n} dtype smoke (fixed block grid, p = 1, best of {iters}):\n");
        println!(
            "{}",
            render_table(
                &[
                    "dtype", "kernel", "op/acc B", "GOP/s", "vs f32", "warm allocs", "A elems",
                    "B elems", "C elems"
                ],
                &rows
            )
        );
        match dtype_counters_invariant(&points) {
            Ok(()) => {
                println!("element counters invariant + zero-alloc warm path across dtypes: OK")
            }
            Err(msg) => {
                eprintln!("dtype smoke FAILED: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(list) = arg_value("--threads") {
        let threads: Vec<usize> = list
            .split(',')
            .map(|t| match t.trim().parse::<usize>() {
                Ok(p) if p > 0 => p,
                _ => {
                    eprintln!("invalid --threads entry '{t}' (want positive integers)");
                    std::process::exit(2);
                }
            })
            .collect();
        let points = sweep_shape(m, k, n, &threads, iters, pin);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|pt| {
                vec![
                    pt.p.to_string(),
                    pt.effective_p.to_string(),
                    pt.barrier_mode.to_string(),
                    format!("{:.2}", pt.gflops),
                    format!("{:.2}", pt.speedup),
                    format!("{:.2}", pt.efficiency),
                    format!("{:.3}", pt.imbalance),
                    format!("{:.3}", pt.barrier_wait_ns_max as f64 / 1e6),
                    pt.a_elems.to_string(),
                    pt.b_elems.to_string(),
                ]
            })
            .collect();
        let cores = cake_core::topology::available_cores();
        let kernel = points.first().map_or("", |pt| pt.kernel);
        println!(
            "GEMM {m}x{k}x{n} strong-scaling sweep (fixed block grid, kernel {kernel}, \
             best of {iters}, host has {cores} core(s)):\n"
        );
        println!(
            "{}",
            render_table(
                &[
                    "p", "eff p", "barrier", "GFLOP/s", "speedup", "effic.", "imbal.",
                    "bar max ms", "A elems", "B elems"
                ],
                &rows
            )
        );
        if has_flag("--check-counters") {
            match counters_invariant(&points) {
                Ok(()) => println!("pack counters invariant across p: OK"),
                Err(msg) => {
                    eprintln!("counter invariance FAILED: {msg}");
                    std::process::exit(1);
                }
            }
            match scaling_sane(&points, cores) {
                Ok(()) => println!("same-host scaling sanity (cores >= 2p => speedup > 1): OK"),
                Err(msg) => {
                    eprintln!("scaling sanity FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    let p = opt_usize("--p", 1);
    // Per-p tuned shape (paper Section 3 + the Section 4.3 LRU fit): the
    // block's M-extent grows with p, mc bounded by the cache budget.
    let llc_bytes = arg_value("--llc-mib")
        .and_then(|v| v.parse::<usize>().ok())
        .map(|mib| mib << 20)
        .unwrap_or(CakeConfig::default().llc_bytes);
    let cfg = CakeConfig {
        pin_cores: pin,
        ..CakeConfig::tuned_for(p, llc_bytes)
    };
    let dtype = arg_value("--dtype").unwrap_or_else(|| "f32".into());
    match dtype.as_str() {
        "f32" => run_typed_gemm::<f32>(m, k, n, p, iters, cfg, |r, c, s| {
            cake_matrix::init::random::<f32>(r, c, s)
        }),
        "f64" => run_typed_gemm::<f64>(m, k, n, p, iters, cfg, |r, c, s| {
            cake_matrix::init::random::<f64>(r, c, s)
        }),
        "int8" => run_typed_gemm::<i8>(m, k, n, p, iters, cfg, cake_matrix::init::random_i8),
        "bf16" => run_typed_gemm::<cake_matrix::Bf16>(m, k, n, p, iters, cfg, |r, c, s| {
            let f = cake_matrix::init::random::<f32>(r, c, s);
            cake_matrix::Matrix::from_fn(r, c, |i, j| cake_matrix::Bf16::from_f32(f.get(i, j)))
        }),
        other => {
            eprintln!("unknown --dtype '{other}' (expected f32|f64|bf16|int8)");
            std::process::exit(2);
        }
    }
}

/// One timed GEMM at dtype `T`: warmup sizes the pools, then `iters` warm
/// runs keep the best wall time. The result line carries the dtype and the
/// dispatched kernel; `--explain` and `--stats` are dtype-aware too.
fn run_typed_gemm<T>(
    m: usize,
    k: usize,
    n: usize,
    p: usize,
    iters: usize,
    cfg: CakeConfig,
    gen: impl Fn(usize, usize, u64) -> cake_matrix::Matrix<T>,
) where
    T: cake_kernels::select::KernelSelect,
{
    if has_flag("--explain") {
        // Kernel-aware: the decision derives from (and records) the kernel
        // this run will actually dispatch to for this dtype.
        println!("{}", cfg.explain_shape_for::<T>(m, k, n));
    }
    let ctx = CakeGemm::new(cfg);
    let a = gen(m, k, 1);
    let b = gen(k, n, 2);
    let mut c = cake_matrix::Matrix::<T::Acc>::zeros(m, n);

    ctx.gemm(&a, &b, &mut c); // warmup: sizes pool + workspace
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        ctx.gemm(&a, &b, &mut c);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    // GOP/s: multiply-accumulate ops regardless of dtype (FLOPs for the
    // float dtypes, integer MACs for int8).
    let gops = 2.0 * (m as f64) * (k as f64) * (n as f64) / best / 1e9;
    println!(
        "GEMM {m}x{k}x{n}, p = {p}, dtype {}, kernel {}: {:.3} ms best of {iters} ({gops:.2} GOP/s)",
        T::NAME,
        ctx.last_stats().kernel,
        best * 1e3
    );
    if has_flag("--stats") {
        println!(
            "  dtype            : {:>12}  ({} B operands, {} B accumulator)",
            T::NAME,
            std::mem::size_of::<T>(),
            std::mem::size_of::<T::Acc>()
        );
        print_exec_stats(&ctx.last_stats());
    }
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_default();
    match cmd.as_str() {
        "shape" => cmd_shape(),
        "sim" | "simulate" => cmd_sim(),
        "search" => cmd_search(),
        "tune" => cmd_tune(),
        "traffic" => cmd_traffic(),
        "gemm" => cmd_gemm(),
        "verify" => cmd_verify(),
        "audit" => cmd_audit(),
        _ => {
            eprintln!(
                "usage: cakectl <shape|sim|search|tune|traffic|gemm|verify|audit> [options]\n\
                 see module docs (crates/cake-bench/src/bin/cakectl.rs) for flags"
            );
            std::process::exit(2);
        }
    }
}
