//! Figure 10 — Intel i9-10900K scaling study, 23040^3 MM.
//!
//! Panel (a): DRAM bandwidth (CAKE observed, MKL observed, CAKE optimal).
//! Panel (b): computation throughput with extrapolation past 10 cores.
//! Panel (c): internal bandwidth (measured curve + linear extrapolation).
//!
//! Usage: `fig10 [--n SIZE]` (default 23040, the paper's size).

use cake_bench::figures::fig10;
use cake_bench::output::{arg_value, ascii_chart, f2, render_table, write_csv};

fn main() {
    let n: usize = arg_value("--n").and_then(|s| s.parse().ok()).unwrap_or(23040);
    println!("Figure 10: CAKE vs MKL on Intel i9-10900K, {n}x{n}x{n} MM\n");
    let rows = fig10(n);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.p.to_string(),
                if r.extrapolated { "yes" } else { "" }.into(),
                f2(r.cake_dram_bw),
                f2(r.vendor_dram_bw),
                f2(r.cake_optimal_bw),
                f2(r.cake_gflops),
                f2(r.vendor_gflops),
                f2(r.internal_bw),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "p",
                "extrap",
                "CAKE DRAM GB/s",
                "MKL DRAM GB/s",
                "CAKE optimal GB/s",
                "CAKE GFLOP/s",
                "MKL GFLOP/s",
                "internal GB/s",
            ],
            &table
        )
    );
    // Terminal plots of panels (a) and (b).
    let pa: Vec<(f64, f64)> = rows.iter().map(|r| (r.p as f64, r.cake_dram_bw)).collect();
    let pb: Vec<(f64, f64)> = rows.iter().map(|r| (r.p as f64, r.vendor_dram_bw)).collect();
    println!(
        "{}",
        ascii_chart(
            "Panel (a): avg DRAM bandwidth (GB/s) vs cores",
            &[("CAKE", pa), ("MKL", pb)],
            12
        )
    );
    let ta: Vec<(f64, f64)> = rows.iter().map(|r| (r.p as f64, r.cake_gflops)).collect();
    let tb: Vec<(f64, f64)> = rows.iter().map(|r| (r.p as f64, r.vendor_gflops)).collect();
    println!(
        "{}",
        ascii_chart(
            "Panel (b): computation throughput (GFLOP/s) vs cores",
            &[("CAKE", ta), ("MKL", tb)],
            12
        )
    );

    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{:.3},{:.3},{:.3},{:.2},{:.2},{:.1}",
                r.p,
                r.extrapolated,
                r.cake_dram_bw,
                r.vendor_dram_bw,
                r.cake_optimal_bw,
                r.cake_gflops,
                r.vendor_gflops,
                r.internal_bw
            )
        })
        .collect();
    if let Ok(p) = write_csv(
        "fig10",
        "p,extrapolated,cake_dram_gbs,mkl_dram_gbs,cake_optimal_gbs,cake_gflops,mkl_gflops,internal_gbs",
        &csv,
    ) {
        println!("wrote {}", p.display());
    }
}
