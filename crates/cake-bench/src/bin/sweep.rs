//! Native sweep: real wall-clock CAKE vs GOTO vs naive on this machine.
//!
//! Not a paper figure — the sandbox has a single core — but validates
//! that the actual library implementations run and lets users on real
//! multi-core machines reproduce the paper's comparisons natively.
//!
//! Usage: `sweep [--max SIZE] [--threads P]`

use std::time::Instant;

use cake_bench::output::{arg_value, render_table, write_csv};
use cake_core::api::{cake_sgemm, CakeConfig};
use cake_goto::api::{goto_gemm, GotoConfig};
use cake_goto::naive::naive_gemm_ikj;
use cake_matrix::{init, Matrix};

/// Best-of-3 timing (single-shot numbers are too noisy on shared machines).
fn time_gflops(m: usize, k: usize, n: usize, mut f: impl FnMut(&mut Matrix<f32>)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut c = Matrix::<f32>::zeros(m, n);
        let t0 = Instant::now();
        f(&mut c);
        let dt = t0.elapsed().as_secs_f64();
        // Prevent the whole computation from being optimized out.
        std::hint::black_box(c.get(m / 2, n / 2));
        best = best.min(dt);
    }
    2.0 * m as f64 * k as f64 * n as f64 / best / 1e9
}

fn main() {
    let max: usize = arg_value("--max").and_then(|s| s.parse().ok()).unwrap_or(768);
    let threads: usize = arg_value("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    println!("Native GEMM sweep on this machine ({threads} thread(s))\n");
    let mut sizes = vec![128usize, 256, 384, 512];
    sizes.extend([640, 768, 1024, 1536, 2048].iter().filter(|&&s| s <= max));
    sizes.retain(|&s| s <= max);

    let cake_cfg = CakeConfig::with_threads(threads);
    let goto_cfg = GotoConfig::with_threads(threads);

    let mut table = Vec::new();
    let mut csv = Vec::new();
    for &s in &sizes {
        let a = init::random::<f32>(s, s, 1);
        let b = init::random::<f32>(s, s, 2);

        let g_cake = time_gflops(s, s, s, |c| cake_sgemm(&a, &b, c, &cake_cfg));
        let g_goto = time_gflops(s, s, s, |c| goto_gemm(&a, &b, c, &goto_cfg));
        let g_naive = if s <= 768 {
            time_gflops(s, s, s, |c| naive_gemm_ikj(&a, &b, c))
        } else {
            f64::NAN
        };

        table.push(vec![
            s.to_string(),
            format!("{g_cake:.2}"),
            format!("{g_goto:.2}"),
            if g_naive.is_nan() { "-".into() } else { format!("{g_naive:.2}") },
        ]);
        csv.push(format!("{s},{g_cake:.3},{g_goto:.3},{g_naive:.3}"));
    }
    println!(
        "{}",
        render_table(
            &["M=N=K", "CAKE GFLOP/s", "GOTO GFLOP/s", "naive GFLOP/s"],
            &table
        )
    );
    if let Ok(p) = write_csv("sweep_native", "size,cake_gflops,goto_gflops,naive_gflops", &csv) {
        println!("wrote {}", p.display());
    }
}
