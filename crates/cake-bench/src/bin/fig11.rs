//! Figure 11 — ARM Cortex-A53 scaling study, 3000^3 MM (CAKE vs ARMPL).
//!
//! Usage: `fig11 [--n SIZE]` (default 3000, the paper's size).

use cake_bench::figures::fig11;
use cake_bench::output::{arg_value, ascii_chart, f2, render_table, write_csv};

fn main() {
    let n: usize = arg_value("--n").and_then(|s| s.parse().ok()).unwrap_or(3000);
    println!("Figure 11: CAKE vs ARMPL on ARM v8 Cortex-A53, {n}x{n}x{n} MM\n");
    let rows = fig11(n);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.p.to_string(),
                if r.extrapolated { "yes" } else { "" }.into(),
                f2(r.cake_dram_bw),
                f2(r.vendor_dram_bw),
                f2(r.cake_optimal_bw),
                f2(r.cake_gflops),
                f2(r.vendor_gflops),
                f2(r.internal_bw),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "p",
                "extrap",
                "CAKE DRAM GB/s",
                "ARMPL DRAM GB/s",
                "CAKE optimal GB/s",
                "CAKE GFLOP/s",
                "ARMPL GFLOP/s",
                "internal GB/s",
            ],
            &table
        )
    );
    // Terminal plots of panels (a) and (b).
    let pa: Vec<(f64, f64)> = rows.iter().map(|r| (r.p as f64, r.cake_dram_bw)).collect();
    let pb: Vec<(f64, f64)> = rows.iter().map(|r| (r.p as f64, r.vendor_dram_bw)).collect();
    println!(
        "{}",
        ascii_chart(
            "Panel (a): avg DRAM bandwidth (GB/s) vs cores",
            &[("CAKE", pa), ("ARMPL", pb)],
            12
        )
    );
    let ta: Vec<(f64, f64)> = rows.iter().map(|r| (r.p as f64, r.cake_gflops)).collect();
    let tb: Vec<(f64, f64)> = rows.iter().map(|r| (r.p as f64, r.vendor_gflops)).collect();
    println!(
        "{}",
        ascii_chart(
            "Panel (b): computation throughput (GFLOP/s) vs cores",
            &[("CAKE", ta), ("ARMPL", tb)],
            12
        )
    );

    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{:.3},{:.3},{:.3},{:.2},{:.2},{:.1}",
                r.p,
                r.extrapolated,
                r.cake_dram_bw,
                r.vendor_dram_bw,
                r.cake_optimal_bw,
                r.cake_gflops,
                r.vendor_gflops,
                r.internal_bw
            )
        })
        .collect();
    if let Ok(p) = write_csv(
        "fig11",
        "p,extrapolated,cake_dram_gbs,armpl_dram_gbs,cake_optimal_gbs,cake_gflops,armpl_gflops,internal_gbs",
        &csv,
    ) {
        println!("wrote {}", p.display());
    }
}
