//! Figure 8 — relative CAKE/MKL throughput contours over (M, K) for four
//! M:N aspect ratios on the Intel i9 (all 10 cores).
//!
//! Usage: `fig8 [--step SIZE]` (default grid 1000..=8000 step 1000).

use cake_bench::figures::fig8_panel;
use cake_bench::output::{arg_value, write_csv};

fn main() {
    let step: usize = arg_value("--step")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let sizes: Vec<usize> = (1..=8).map(|i| i * step.max(125)).collect();

    for ratio in [1usize, 2, 4, 8] {
        println!("Figure 8: relative throughput for M = {ratio}N (Intel i9, 10 cores)");
        let pts = fig8_panel(ratio, &sizes);

        // Render the contour grid as text: rows = K (descending), cols = M.
        print!("{:>8} |", "K \\ M");
        for &m in &sizes {
            print!("{m:>7}");
        }
        println!();
        println!("{}", "-".repeat(10 + 7 * sizes.len()));
        for &k in sizes.iter().rev() {
            print!("{k:>8} |");
            for &m in &sizes {
                let p = pts
                    .iter()
                    .find(|p| p.m == m && p.k == k)
                    .expect("grid point");
                print!("{:>7.2}", p.ratio);
            }
            println!();
        }
        // Contour legend matching the paper's shading levels.
        let count = |lo: f64| pts.iter().filter(|p| p.ratio >= lo).count();
        println!(
            "points >= 1.00x: {}   >= 1.25x: {}   >= 1.50x: {}   >= 2.00x: {}\n",
            count(1.0),
            count(1.25),
            count(1.5),
            count(2.0)
        );

        let csv: Vec<String> = pts
            .iter()
            .map(|p| format!("{},{},{:.4}", p.m, p.k, p.ratio))
            .collect();
        if let Ok(path) = write_csv(&format!("fig8_m{ratio}n"), "m,k,cake_over_mkl", &csv) {
            println!("wrote {}\n", path.display());
        }
    }
}
