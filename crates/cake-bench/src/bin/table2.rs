//! Table 2 — CPUs used in the CAKE evaluation.

use cake_bench::output::{f1, render_table, write_csv};
use cake_sim::config::CpuConfig;

fn main() {
    let cpus = CpuConfig::table2();
    let header = [
        "CPU", "L1", "L2", "L3", "DRAM", "Cores", "DRAM BW (GB/s)", "Freq (GHz)",
    ];
    let header_l2_l3 = |c: &CpuConfig| -> (String, String) {
        // The A53 has no L3: its shared 512 KiB L2 is the LLC (Table 2
        // prints it in the L2 column with L3 = N/A).
        if c.name.contains("ARM") {
            (format!("{} KiB", c.llc_bytes / 1024), "N/A".to_string())
        } else {
            (
                format!("{} KiB", c.l2_bytes / 1024),
                format!("{} MiB", c.llc_bytes / 1024 / 1024),
            )
        }
    };
    let rows: Vec<Vec<String>> = cpus
        .iter()
        .map(|c| {
            let (l2, l3) = header_l2_l3(c);
            vec![
                c.name.clone(),
                format!("{} KiB", c.l1_bytes / 1024),
                l2,
                l3,
                format!("{} GB", c.dram_bytes / 1024 / 1024 / 1024),
                c.cores.to_string(),
                f1(c.dram_bw_gbs),
                f1(c.freq_ghz),
            ]
        })
        .collect();
    println!("Table 2: CPUs used in CAKE evaluation\n");
    println!("{}", render_table(&header, &rows));

    let csv_rows: Vec<String> = rows.iter().map(|r| r.join(",")).collect();
    match write_csv("table2", &header.join(","), &csv_rows) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
