//! Figure 7 — memory-request distribution across the hierarchy.
//!
//! * Part (a): clock ticks stalled per level, CAKE vs MKL, Intel i9
//!   (paper: 10000x10000 matrices, all 10 cores).
//! * Part (b): cache hits and DRAM accesses, CAKE vs ARMPL, ARM A53
//!   (paper: 3000x3000 matrices).
//!
//! Usage: `fig7 [--part a|b] [--full]`
//! Default sizes are reduced (trace simulation is tile-granular);
//! `--full` uses the paper's sizes.

use cake_bench::figures::{fig7a, fig7b};
use cake_bench::output::{arg_value, has_flag, render_table, write_csv};

fn main() {
    let part = arg_value("--part").unwrap_or_else(|| "ab".into());
    let full = has_flag("--full");

    if part.contains('a') {
        let n = if full { 10000 } else { 3072 };
        println!("Figure 7a: memory request stalls on Intel i9 ({n}x{n}, 10 cores)\n");
        let rows = fig7a(n);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.level.clone(),
                    format!("{:.3e}", r.cake),
                    format!("{:.3e}", r.vendor),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["level", "CAKE (stall cycles)", "MKL (stall cycles)"], &table)
        );
        let csv: Vec<String> = rows
            .iter()
            .map(|r| format!("{},{},{}", r.level, r.cake, r.vendor))
            .collect();
        if let Ok(p) = write_csv("fig7a", "level,cake_stall_cycles,mkl_stall_cycles", &csv) {
            println!("wrote {}\n", p.display());
        }
    }

    if part.contains('b') {
        let n = if full { 3000 } else { 1200 };
        println!("Figure 7b: cache and DRAM accesses on ARM ({n}x{n}, 4 cores)\n");
        let rows = fig7b(n);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.level.clone(),
                    format!("{:.3e}", r.cake),
                    format!("{:.3e}", r.vendor),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["counter", "CAKE", "ARMPL"], &table)
        );
        let csv: Vec<String> = rows
            .iter()
            .map(|r| format!("{},{},{}", r.level, r.cake, r.vendor))
            .collect();
        if let Ok(p) = write_csv("fig7b", "counter,cake,armpl", &csv) {
            println!("wrote {}", p.display());
        }
    }
}
