//! `bench_snapshot` — fixed-shape performance snapshot, checked into the
//! repo root as `BENCH_gemm.json`.
//!
//! Runs CAKE (pipelined executor), the GOTO baseline, and the naive
//! reference at a few fixed GEMM shapes plus a small CNN forward pass, and
//! records GFLOP/s, post-warmup allocation counts, the dispatched kernel
//! tier per entry, and the pipeline's measured pack-overlap numbers. A
//! `kernel_tiers` section benchmarks every kernel tier the host supports
//! (one single-threaded GEMM per tier per shape on a fixed block grid; the
//! run aborts if the traffic counters differ across tiers — they count
//! live elements, a schedule property). A `scaling` section then sweeps
//! `p in {1, 2, 4, 8}` over each shape on a fixed block grid (see
//! `cake_bench::scaling`), recording speedup over `p = 1`, scaling
//! efficiency, the post-clamp `effective_p` and barrier mode per point,
//! and the measured pack-element counters — which must be identical at
//! every `p` (the run aborts if they diverge). A `host` block records the
//! machine's core count and the same-host scaling-gate outcome
//! (`scaling_sane`: with `cores >= 2p` headroom, `p > 1` must beat the
//! baseline; on hosts without headroom the gate records an explicit skip
//! instead of a vacuous pass). A `sim` section records discrete-event
//! simulated p-sweeps (CAKE vs GOTO throughput and DRAM bandwidth) on the
//! three Table-2 CPUs — the Figure 9-12 series as tracked data, identical
//! on every host because no wall clock is involved. Full field-by-field
//! schema docs live in `cake_bench::output`. Intended to run via `ci.sh`
//! so the snapshot tracks the executor's health over time.
//!
//! ```text
//! bench_snapshot [--iters I] [--p P] [--out PATH]
//! ```

use std::time::Instant;

use cake_bench::output::arg_value;
use cake_bench::scaling::{
    counters_invariant, dtype_counters_invariant, kernel_counters_invariant, scaling_sane,
    sweep_dtypes, sweep_kernels, sweep_shape, DtypePoint, KernelPoint, ScalePoint,
};
use cake_bench::tune::{autotune_shape, TuneOptions};
use cake_core::api::{CakeConfig, CakeGemm};
use cake_core::topology;
use cake_core::tune::overlap_efficiency;
use cake_dnn::im2col::ConvGeom;
use cake_dnn::layers::{Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU};
use cake_dnn::network::Sequential;
use cake_dnn::tensor::Tensor;
use cake_goto::api::{goto_gemm, GotoConfig};
use cake_goto::naive::naive_gemm;
use cake_matrix::{init, Matrix};
use cake_sim::config::CpuConfig;
use cake_sim::engine::{simulate_cake, simulate_goto, SimParams};

/// Best-of-`iters` wall time for `f`, in seconds.
fn time_best<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// One timed call, folded into a running best.
fn time_once<F: FnMut()>(best: &mut f64, mut f: F) {
    let t0 = Instant::now();
    f();
    *best = best.min(t0.elapsed().as_secs_f64());
}

fn gflops(m: usize, k: usize, n: usize, seconds: f64) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64 / seconds / 1e9
}

/// Minimal JSON emission — the container has no serde, and the snapshot
/// schema is flat enough that hand-rolling stays honest.
struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::from("{\n"))
    }
    fn field(&mut self, indent: usize, key: &str, value: &str, last: bool) {
        self.0.push_str(&" ".repeat(indent));
        self.0.push_str(&format!("\"{key}\": {value}"));
        self.0.push_str(if last { "\n" } else { ",\n" });
    }
    fn finish(mut self) -> String {
        self.0.push_str("}\n");
        self.0
    }
}

fn f3(x: f64) -> String {
    format!("{x:.3}")
}

struct ShapeResult {
    m: usize,
    k: usize,
    n: usize,
    cake_gflops: f64,
    goto_gflops: f64,
    naive_gflops: f64,
    allocs_after_warmup: usize,
    pack_fraction: f64,
    overlap_efficiency: f64,
    blocks: usize,
    barriers: usize,
    kernel: &'static str,
}

fn bench_shape(ctx: &CakeGemm, p: usize, m: usize, k: usize, n: usize, iters: usize) -> ShapeResult {
    let a = init::random::<f32>(m, k, 1);
    let b = init::random::<f32>(k, n, 2);

    let goto_cfg = GotoConfig::with_threads(p);
    let mut c = Matrix::<f32>::zeros(m, n);
    let mut cg = Matrix::<f32>::zeros(m, n);
    ctx.gemm(&a, &b, &mut c); // warmup: pool + workspace sized
    goto_gemm(&a, &b, &mut cg, &goto_cfg); // warmup

    // Interleave the contenders round-robin so clock drift (shared
    // machines, turbo decay) hits both equally instead of biasing
    // whichever phase ran while the core was fast.
    let mut warm_allocs = 0;
    let (mut cake_s, mut goto_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        time_once(&mut cake_s, || {
            warm_allocs += ctx.gemm_with_stats(&a, &b, &mut c).allocations;
        });
        time_once(&mut goto_s, || goto_gemm(&a, &b, &mut cg, &goto_cfg));
    }
    let stats = ctx.last_stats();

    let mut cn = Matrix::<f32>::zeros(m, n);
    let naive_s = time_best(iters.min(2), || naive_gemm(&a, &b, &mut cn));

    ShapeResult {
        m,
        k,
        n,
        cake_gflops: gflops(m, k, n, cake_s),
        goto_gflops: gflops(m, k, n, goto_s),
        naive_gflops: gflops(m, k, n, naive_s),
        allocs_after_warmup: warm_allocs,
        pack_fraction: stats.pack_fraction(),
        overlap_efficiency: overlap_efficiency(stats.pack_ns, stats.compute_ns),
        blocks: stats.blocks,
        barriers: stats.barriers,
        kernel: stats.kernel,
    }
}

fn tiny_net(p: usize) -> Sequential {
    Sequential::new(CakeConfig::with_threads(p))
        .push(Conv2d::random("conv1", 3, 16, ConvGeom::same(3), 1))
        .push(ReLU)
        .push(MaxPool2d)
        .push(Conv2d::random("conv2", 16, 32, ConvGeom::same(3), 2))
        .push(ReLU)
        .push(GlobalAvgPool)
        .push(Linear::random("fc", 32, 10, 3))
}

/// One tuned-vs-default comparison for the `autotune` section.
struct TuneRow {
    m: usize,
    k: usize,
    n: usize,
    dtype: &'static str,
    default_gflops: f64,
    tuned_gflops: f64,
    mc: usize,
    kc: usize,
    nc: usize,
    tier: String,
    speedup: f64,
    sim_evaluations: usize,
}

/// Full tuning loop (sim ranking + micro-bench refinement) for one
/// shape at dtype `T`; `tuned >= default` holds by construction because
/// the closed-form default competes in the measured round.
fn tune_row<T: cake_kernels::select::KernelSelect>(
    m: usize,
    k: usize,
    n: usize,
    p: usize,
    iters: usize,
) -> TuneRow {
    let opts = TuneOptions {
        top_k: 3,
        reps: iters,
        ..TuneOptions::default()
    };
    let out = autotune_shape::<T>(m, k, n, p, opts);
    TuneRow {
        m,
        k,
        n,
        dtype: T::NAME,
        default_gflops: out.default_gflops,
        tuned_gflops: out.entry.gflops,
        mc: out.entry.mc,
        kc: out.entry.kc,
        nc: out.entry.nc,
        tier: out.entry.tier.clone(),
        speedup: out.speedup(),
        sim_evaluations: out.sim_evaluations,
    }
}

fn main() {
    let iters = arg_value("--iters").and_then(|v| v.parse().ok()).unwrap_or(3).max(1);
    let p: usize = arg_value("--p").and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_gemm.json".into());

    let ctx = CakeGemm::new(CakeConfig::with_threads(p));
    let shapes = [(256usize, 256usize, 256usize), (384, 256, 512), (512, 512, 512)];
    let results: Vec<ShapeResult> = shapes
        .iter()
        .map(|&(m, k, n)| {
            let r = bench_shape(&ctx, p, m, k, n, iters);
            println!(
                "{m}x{k}x{n}: cake {:.2} GF/s  goto {:.2} GF/s  naive {:.2} GF/s  \
                 (pack {:.1}%, {} allocs warm)",
                r.cake_gflops,
                r.goto_gflops,
                r.naive_gflops,
                r.pack_fraction * 100.0,
                r.allocs_after_warmup
            );
            r
        })
        .collect();

    // Kernel-tier sweep per shape: one single-threaded GEMM per tier the
    // host supports, fixed block grid, so the per-tier GFLOP/s are directly
    // comparable and the counters must match exactly.
    let kernel_tiers: Vec<(usize, usize, usize, Vec<KernelPoint>)> = shapes
        .iter()
        .map(|&(m, k, n)| {
            let points = sweep_kernels(m, k, n, iters);
            for pt in &points {
                println!(
                    "{m}x{k}x{n} tier {} ({}, {}x{}): {:.2} GF/s",
                    pt.tier.name(),
                    pt.kernel,
                    pt.mr,
                    pt.nr,
                    pt.gflops
                );
            }
            if let Err(msg) = kernel_counters_invariant(&points) {
                eprintln!("kernel-tier sweep {m}x{k}x{n}: {msg}");
                std::process::exit(1);
            }
            (m, k, n, points)
        })
        .collect();

    // Dtype sweep per shape: one single-threaded GEMM per supported dtype
    // (f32/f64/bf16/int8) on a fixed block grid, each through its own
    // best-tier kernel. Element counters must match across dtypes, and
    // every dtype's timed iterations must run allocation-free.
    let dtypes: Vec<(usize, usize, usize, Vec<DtypePoint>)> = shapes
        .iter()
        .map(|&(m, k, n)| {
            let points = sweep_dtypes(m, k, n, iters);
            for pt in &points {
                println!(
                    "{m}x{k}x{n} dtype {} ({}): {:.2} GOP/s ({} allocs warm)",
                    pt.dtype, pt.kernel, pt.gops, pt.allocs_after_warmup
                );
            }
            if let Err(msg) = dtype_counters_invariant(&points) {
                eprintln!("dtype sweep {m}x{k}x{n}: {msg}");
                std::process::exit(1);
            }
            (m, k, n, points)
        })
        .collect();

    // Multicore p-sweep per shape: fixed block grid, so the element
    // counters are comparable (and must be equal) across p.
    const SWEEP_P: [usize; 4] = [1, 2, 4, 8];
    let cores = topology::available_cores();
    let scaling: Vec<(usize, usize, usize, Vec<ScalePoint>)> = shapes
        .iter()
        .map(|&(m, k, n)| {
            let points = sweep_shape(m, k, n, &SWEEP_P, iters, false);
            for pt in &points {
                println!(
                    "{m}x{k}x{n} p={} (eff {}, {}): {:.2} GF/s  speedup {:.2}x  \
                     efficiency {:.2}  imbalance {:.2}",
                    pt.p,
                    pt.effective_p,
                    pt.barrier_mode,
                    pt.gflops,
                    pt.speedup,
                    pt.efficiency,
                    pt.imbalance
                );
            }
            if let Err(msg) = counters_invariant(&points) {
                eprintln!("scaling sweep {m}x{k}x{n}: {msg}");
                std::process::exit(1);
            }
            if let Err(msg) = scaling_sane(&points, cores) {
                eprintln!("scaling sweep {m}x{k}x{n}: {msg}");
                std::process::exit(1);
            }
            (m, k, n, points)
        })
        .collect();
    // Honest gate record: a 1-core host passes `scaling_sane` vacuously,
    // so the snapshot says so instead of claiming a multicore win.
    let scale_gate = if cores < 2 {
        format!("skipped: host has {cores} core(s), no multicore headroom")
    } else {
        format!("ok: checked on {cores} core(s)")
    };
    println!("scaling gate: {scale_gate}");

    // CNN forward pass: cold (sizes every layer's workspace) then warm.
    let net = tiny_net(p);
    let input = Tensor::from_matrix(init::random::<f32>(3, 32 * 32, 9), 32, 32);
    let flops = net.total_flops(3, 32, 32);
    let t0 = Instant::now();
    let _ = net.forward(&input);
    let cold_s = t0.elapsed().as_secs_f64();
    let mut warm_allocs = 0u64;
    let warm_s = time_best(iters, || {
        let (_, reports) = net.forward(&input);
        warm_allocs += reports.iter().map(|r| r.gemm.allocations as u64).sum::<u64>();
    });
    println!(
        "dnn forward (32x32x3, {flops} flops): cold {:.3} ms, warm {:.3} ms ({} allocs warm)",
        cold_s * 1e3,
        warm_s * 1e3,
        warm_allocs
    );

    let mut j = Json::new();
    j.field(2, "benchmark", "\"bench_snapshot\"", false);
    j.field(2, "threads", &p.to_string(), false);
    j.field(2, "iters", &iters.to_string(), false);
    j.field(
        2,
        "host",
        &format!("{{\"cores\": {cores}, \"scale_gate\": \"{scale_gate}\"}}"),
        false,
    );
    let mut rows = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        rows.push_str(&format!(
            "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"kernel\": \"{}\", \"cake_gflops\": {}, \
             \"goto_gflops\": {}, \
             \"naive_gflops\": {}, \"allocs_after_warmup\": {}, \"pack_fraction\": {}, \
             \"overlap_efficiency\": {}, \"blocks\": {}, \"barriers\": {}}}{}\n",
            r.m,
            r.k,
            r.n,
            r.kernel,
            f3(r.cake_gflops),
            f3(r.goto_gflops),
            f3(r.naive_gflops),
            r.allocs_after_warmup,
            f3(r.pack_fraction),
            f3(r.overlap_efficiency),
            r.blocks,
            r.barriers,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    rows.push_str("  ]");
    j.field(2, "gemm", &rows, false);
    let mut kt = String::from("[\n");
    for (si, (m, k, n, points)) in kernel_tiers.iter().enumerate() {
        kt.push_str(&format!("    {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"tiers\": [\n"));
        for (i, pt) in points.iter().enumerate() {
            kt.push_str(&format!(
                "      {{\"tier\": \"{}\", \"kernel\": \"{}\", \"mr\": {}, \"nr\": {}, \
                 \"cake_gflops\": {}, \"a_elems\": {}, \"b_elems\": {}, \"c_elems\": {}}}{}\n",
                pt.tier.name(),
                pt.kernel,
                pt.mr,
                pt.nr,
                f3(pt.gflops),
                pt.a_elems,
                pt.b_elems,
                pt.c_elems,
                if i + 1 == points.len() { "" } else { "," }
            ));
        }
        kt.push_str(&format!(
            "    ]}}{}\n",
            if si + 1 == kernel_tiers.len() { "" } else { "," }
        ));
    }
    kt.push_str("  ]");
    j.field(2, "kernel_tiers", &kt, false);
    let mut dt = String::from("[\n");
    for (si, (m, k, n, points)) in dtypes.iter().enumerate() {
        dt.push_str(&format!("    {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"dtypes\": [\n"));
        for (i, pt) in points.iter().enumerate() {
            dt.push_str(&format!(
                "      {{\"dtype\": \"{}\", \"kernel\": \"{}\", \"elem_bytes\": {}, \
                 \"acc_bytes\": {}, \"gops\": {}, \"allocs_after_warmup\": {}, \
                 \"a_elems\": {}, \"b_elems\": {}, \"c_elems\": {}}}{}\n",
                pt.dtype,
                pt.kernel,
                pt.elem_bytes,
                pt.acc_bytes,
                f3(pt.gops),
                pt.allocs_after_warmup,
                pt.a_elems,
                pt.b_elems,
                pt.c_elems,
                if i + 1 == points.len() { "" } else { "," }
            ));
        }
        dt.push_str(&format!(
            "    ]}}{}\n",
            if si + 1 == dtypes.len() { "" } else { "," }
        ));
    }
    dt.push_str("  ]");
    j.field(2, "dtypes", &dt, false);
    let mut sc = String::from("[\n");
    for (si, (m, k, n, points)) in scaling.iter().enumerate() {
        sc.push_str(&format!("    {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"points\": [\n"));
        for (i, pt) in points.iter().enumerate() {
            sc.push_str(&format!(
                "      {{\"p\": {}, \"effective_p\": {}, \"barrier_mode\": \"{}\", \
                 \"kernel\": \"{}\", \
                 \"cake_gflops\": {}, \"speedup\": {}, \"efficiency\": {}, \
                 \"a_elems\": {}, \"b_elems\": {}, \"c_elems\": {}, \
                 \"barrier_wait_ns_max\": {}, \"barrier_wait_ns_sum\": {}, \"imbalance\": {}}}{}\n",
                pt.p,
                pt.effective_p,
                pt.barrier_mode,
                pt.kernel,
                f3(pt.gflops),
                f3(pt.speedup),
                f3(pt.efficiency),
                pt.a_elems,
                pt.b_elems,
                pt.c_elems,
                pt.barrier_wait_ns_max,
                pt.barrier_wait_ns_sum,
                f3(pt.imbalance),
                if i + 1 == points.len() { "" } else { "," }
            ));
        }
        sc.push_str(&format!(
            "    ]}}{}\n",
            if si + 1 == scaling.len() { "" } else { "," }
        ));
    }
    sc.push_str("  ]");
    j.field(2, "scaling", &sc, false);
    // Simulated p-sweeps on the three Table-2 CPUs (discrete-event
    // engine, no wall-clock involved): the Figure 9-12 series as data,
    // tracked over time like the measured sections. Schema docs in
    // `cake_bench::output`.
    let mut sim = String::from("[\n");
    let sim_cpus = CpuConfig::table2();
    for (ci, cpu) in sim_cpus.iter().enumerate() {
        let n = match cpu.cores {
            0..=4 => 3000,
            5..=10 => 4608,
            _ => 9216,
        };
        let ps: Vec<usize> =
            [1, cpu.cores / 4, cpu.cores / 2, cpu.cores].iter().copied().filter(|p| *p >= 1).collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        sim.push_str(&format!(
            "    {{\"cpu\": \"{}\", \"n\": {n}, \"points\": [\n",
            cpu.name
        ));
        for (i, &sp_p) in ps.iter().enumerate() {
            let sp = SimParams::square(n, sp_p);
            let c = simulate_cake(cpu, &sp);
            let g = simulate_goto(cpu, &sp);
            sim.push_str(&format!(
                "      {{\"p\": {sp_p}, \"cake_gflops\": {}, \"cake_dram_gbs\": {}, \
                 \"goto_gflops\": {}, \"goto_dram_gbs\": {}, \"cake_dram_bytes\": {}, \
                 \"goto_dram_bytes\": {}, \"events\": {}}}{}\n",
                f3(c.gflops),
                f3(c.avg_dram_bw_gbs),
                f3(g.gflops),
                f3(g.avg_dram_bw_gbs),
                c.dram_bytes,
                g.dram_bytes,
                c.events + g.events,
                if i + 1 == ps.len() { "" } else { "," }
            ));
        }
        sim.push_str(&format!(
            "    ]}}{}\n",
            if ci + 1 == sim_cpus.len() { "" } else { "," }
        ));
    }
    sim.push_str("  ]");
    j.field(2, "sim", &sim, false);
    // Autotune section: the full tuning loop (deterministic candidate
    // grid -> host-shaped sim ranking -> top-K micro-bench) per fixed
    // shape and dtype, recorded as tuned-vs-default GFLOP/s. The
    // closed-form default competes in every measured round, so
    // `tuned_gflops >= default_gflops` holds by construction; the run
    // aborts if that invariant is ever violated. Schema docs in
    // `cake_bench::output`.
    let mut tune_rows: Vec<TuneRow> = Vec::new();
    for &(m, k, n) in &shapes {
        tune_rows.push(tune_row::<f32>(m, k, n, p, iters));
        tune_rows.push(tune_row::<f64>(m, k, n, p, iters));
        tune_rows.push(tune_row::<i8>(m, k, n, p, iters));
        tune_rows.push(tune_row::<cake_matrix::Bf16>(m, k, n, p, iters));
    }
    for r in &tune_rows {
        println!(
            "{}x{}x{} tune {}: default {:.2} -> tuned {:.2} GF/s (x{:.3}, \
             mc={} kc={} nc={} tier={})",
            r.m,
            r.k,
            r.n,
            r.dtype,
            r.default_gflops,
            r.tuned_gflops,
            r.speedup,
            r.mc,
            r.kc,
            r.nc,
            r.tier
        );
        if r.tuned_gflops < r.default_gflops {
            eprintln!(
                "autotune {}x{}x{} {}: tuned {:.3} GF/s lost to default {:.3} GF/s",
                r.m, r.k, r.n, r.dtype, r.tuned_gflops, r.default_gflops
            );
            std::process::exit(1);
        }
    }
    let best_speedup = tune_rows.iter().map(|r| r.speedup).fold(0.0, f64::max);
    println!("autotune best speedup over closed form: x{best_speedup:.3}");
    let mut tn = String::from("[\n");
    for (i, r) in tune_rows.iter().enumerate() {
        tn.push_str(&format!(
            "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"dtype\": \"{}\", \
             \"default_gflops\": {}, \"tuned_gflops\": {}, \"speedup\": {}, \
             \"mc\": {}, \"kc\": {}, \"nc\": {}, \"tier\": \"{}\", \
             \"sim_evaluations\": {}}}{}\n",
            r.m,
            r.k,
            r.n,
            r.dtype,
            f3(r.default_gflops),
            f3(r.tuned_gflops),
            f3(r.speedup),
            r.mc,
            r.kc,
            r.nc,
            r.tier,
            r.sim_evaluations,
            if i + 1 == tune_rows.len() { "" } else { "," }
        ));
    }
    tn.push_str("  ]");
    j.field(2, "autotune", &tn, false);
    j.field(
        2,
        "dnn_forward",
        &format!(
            "{{\"input\": \"3x32x32\", \"flops\": {flops}, \"cold_seconds\": {:.6}, \
             \"warm_seconds\": {:.6}, \"gflops_warm\": {}, \"allocs_warm\": {warm_allocs}}}",
            cold_s,
            warm_s,
            f3(flops as f64 / warm_s / 1e9)
        ),
        true,
    );
    std::fs::write(&out, j.finish()).expect("write snapshot");
    println!("wrote {out}");
}
