//! Figure 9 — speedup (t_p / t_1) for square matrices.
//!
//! * Part (a): CAKE vs MKL on the Intel i9, sizes 1000/2000/3000.
//! * Part (b): CAKE vs ARMPL on the ARM A53, same sizes.
//!
//! Usage: `fig9 [--part a|b]`

use cake_bench::figures::{fig9, vendor_name};
use cake_bench::output::{arg_value, f2, render_table, write_csv};
use cake_sim::config::CpuConfig;

fn run(cpu: &CpuConfig, tag: &str) {
    let sizes = [1000usize, 2000, 3000];
    println!(
        "Figure 9{tag}: speedup for square matrices, CAKE vs {} on {}\n",
        vendor_name(cpu),
        cpu.name
    );
    let rows = fig9(cpu, &sizes);
    let mut table = Vec::new();
    for &size in &sizes {
        for r in rows.iter().filter(|r| r.size == size) {
            table.push(vec![
                size.to_string(),
                r.p.to_string(),
                f2(r.cake),
                f2(r.vendor),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["M=N=K", "cores", "CAKE speedup", "vendor speedup"], &table)
    );
    let csv: Vec<String> = rows
        .iter()
        .map(|r| format!("{},{},{:.4},{:.4}", r.size, r.p, r.cake, r.vendor))
        .collect();
    if let Ok(p) = write_csv(&format!("fig9{tag}"), "size,p,cake_speedup,vendor_speedup", &csv) {
        println!("wrote {}\n", p.display());
    }
}

fn main() {
    let part = arg_value("--part").unwrap_or_else(|| "ab".into());
    if part.contains('a') {
        run(&CpuConfig::intel_i9_10900k(), "a");
    }
    if part.contains('b') {
        run(&CpuConfig::arm_cortex_a53(), "b");
    }
}
