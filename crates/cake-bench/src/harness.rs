//! Minimal wall-clock benchmark harness with a criterion-like surface.
//!
//! The offline build container cannot fetch the `criterion` crate, so the
//! `benches/` targets run on this in-tree stand-in instead. It keeps the
//! subset of the criterion 0.5 API those benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! and reports mean wall time (plus derived throughput) per benchmark to
//! stdout. No statistics beyond the mean: the point is a stable smoke-run
//! of every benchmarked path, not confidence intervals.

use std::fmt::Display;
use std::time::Instant;

/// Top-level harness state; holds the default sample count.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// Units-of-work declaration used to derive a rate from the mean time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration (reported as Melem/s).
    Elements(u64),
    /// Bytes processed per iteration (reported as GiB/s).
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label a benchmark `name` with a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Label a benchmark by parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

/// Anything acceptable as a benchmark label.
pub trait IntoBenchmarkId {
    /// Convert to the rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// A named collection of benchmarks sharing sample count and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    // audit: cold offline measurement harness, never on the warm path
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&self.name, &label, b.mean_ns, self.throughput);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &label, b.mean_ns, self.throughput);
        self
    }

    /// End the group (printing is immediate, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`: one untimed warmup, then `sample_size` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.sample_size as f64;
    }
}

fn report(group: &str, label: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let time = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} us", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.0} ns")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  {:>10.2} Melem/s", n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!(
                "  {:>10.2} GiB/s",
                n as f64 / mean_ns * 1e9 / (1u64 << 30) as f64
            )
        }
        _ => String::new(),
    };
    println!("{group}/{label:<28} {time:>12}{rate}");
}

/// Criterion-compatible group declaration: builds a `fn $name()` running
/// every target against the given config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Criterion-compatible entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("harness_selftest");
        let mut calls = 0u32;
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("count", 3), |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warmup + 3 timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("cake", 256).into_label(), "cake/256");
        assert_eq!(BenchmarkId::from_parameter(2.5).into_label(), "2.5");
        assert_eq!("plain".into_label(), "plain");
    }
}
