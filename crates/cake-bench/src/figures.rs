//! Figure and table runners: each produces the series the corresponding
//! paper artifact plots.

use cake_core::model::CakeModel;
use cake_sim::config::CpuConfig;
use cake_sim::engine::{
    resolve_cake_shape, simulate_cake, simulate_goto, SimParams,
};
use cake_sim::trace::{run_cake_trace, run_goto_trace, stall_breakdown_cycles};

/// Vendor-library stand-in name per CPU (the library the paper compared
/// against on that machine; all are GOTO-algorithm implementations).
pub fn vendor_name(cpu: &CpuConfig) -> &'static str {
    if cpu.name.contains("Intel") {
        "MKL(GOTO)"
    } else if cpu.name.contains("AMD") {
        "OpenBLAS(GOTO)"
    } else {
        "ARMPL(GOTO)"
    }
}

// ---------------------------------------------------------------------------
// Figure 7 — memory-level stall / access distribution.
// ---------------------------------------------------------------------------

/// One bar pair of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Memory level / counter name.
    pub level: String,
    /// CAKE's value.
    pub cake: f64,
    /// Vendor (GOTO) value.
    pub vendor: f64,
}

/// Figure 7a: clock ticks stalled per memory level, CAKE vs MKL on the
/// Intel CPU (paper: 10000^3; pass a smaller `n` for quick runs — the
/// distribution is size-stable once working sets exceed the LLC).
pub fn fig7a(n: usize) -> Vec<Fig7Row> {
    let cpu = CpuConfig::intel_i9_10900k();
    let sp = SimParams::square(n, cpu.cores);
    let cake = stall_breakdown_cycles(&run_cake_trace(&cpu, &sp), &cpu);
    let goto = stall_breakdown_cycles(&run_goto_trace(&cpu, &sp), &cpu);
    ["L1", "L2", "L3", "Main Memory"]
        .iter()
        .enumerate()
        .map(|(i, lvl)| Fig7Row {
            level: (*lvl).to_string(),
            cake: cake[i],
            vendor: goto[i],
        })
        .collect()
}

/// Figure 7b: cache hits and DRAM accesses, CAKE vs ARMPL on the ARM CPU
/// (paper: 3000^3).
pub fn fig7b(n: usize) -> Vec<Fig7Row> {
    let cpu = CpuConfig::arm_cortex_a53();
    let sp = SimParams::square(n, cpu.cores);
    let cake = run_cake_trace(&cpu, &sp);
    let goto = run_goto_trace(&cpu, &sp);
    vec![
        Fig7Row {
            level: "L1 Hits".into(),
            cake: cake.l1_hits as f64,
            vendor: goto.l1_hits as f64,
        },
        Fig7Row {
            level: "L2 Hits".into(),
            // The A53's shared L2 is the LLC in our hierarchy.
            cake: (cake.l2_hits + cake.llc_hits) as f64,
            vendor: (goto.l2_hits + goto.llc_hits) as f64,
        },
        Fig7Row {
            level: "DRAM Requests".into(),
            cake: cake.dram_accesses as f64,
            vendor: goto.dram_accesses as f64,
        },
    ]
}

// ---------------------------------------------------------------------------
// Figure 8 — relative throughput contours over (M, K).
// ---------------------------------------------------------------------------

/// One grid point of Figure 8.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Point {
    /// Row extent (`M`; the x-axis value, with `N = M / ratio`).
    pub m: usize,
    /// Reduction extent (y axis).
    pub k: usize,
    /// CAKE throughput / vendor throughput.
    pub ratio: f64,
}

/// Figure 8 panel for `M = ratio * N` (ratio in {1, 2, 4, 8}): relative
/// CAKE/MKL throughput on the Intel CPU over the (M, K) grid in `sizes`.
pub fn fig8_panel(ratio_mn: usize, sizes: &[usize]) -> Vec<Fig8Point> {
    assert!(ratio_mn >= 1);
    let cpu = CpuConfig::intel_i9_10900k();
    let mut out = Vec::with_capacity(sizes.len() * sizes.len());
    for &m in sizes {
        let n = (m / ratio_mn).max(1);
        for &k in sizes {
            let mut sp = SimParams::new(m, k, n, cpu.cores);
            sp.elem_bytes = 4;
            let c = simulate_cake(&cpu, &sp);
            let g = simulate_goto(&cpu, &sp);
            out.push(Fig8Point {
                m,
                k,
                ratio: c.gflops / g.gflops.max(1e-12),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 9 — speedup vs cores for square matrices.
// ---------------------------------------------------------------------------

/// One point of a Figure 9 speedup curve.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupRow {
    /// Matrix side (`M = N = K`).
    pub size: usize,
    /// Cores used.
    pub p: usize,
    /// CAKE speedup over its own single-core run.
    pub cake: f64,
    /// Vendor (GOTO) speedup over its own single-core run.
    pub vendor: f64,
}

/// Figure 9 speedup curves (`t_p / t_1` per algorithm) on `cpu` for the
/// given square sizes.
pub fn fig9(cpu: &CpuConfig, sizes: &[usize]) -> Vec<SpeedupRow> {
    let mut out = Vec::new();
    for &size in sizes {
        let c1 = simulate_cake(cpu, &SimParams::square(size, 1)).gflops;
        let g1 = simulate_goto(cpu, &SimParams::square(size, 1)).gflops;
        for p in 1..=cpu.cores {
            let cp = simulate_cake(cpu, &SimParams::square(size, p)).gflops;
            let gp = simulate_goto(cpu, &SimParams::square(size, p)).gflops;
            out.push(SpeedupRow {
                size,
                p,
                cake: cp / c1,
                vendor: gp / g1,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 10 / 11 / 12 — the three-panel scaling studies.
// ---------------------------------------------------------------------------

/// One core-count row of a scaling study (panels a, b, c of Figures
/// 10/11/12).
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Cores used.
    pub p: usize,
    /// `true` for the dashed extrapolated region (`p` beyond the physical
    /// core count, assuming linear internal BW + quadratic local memory).
    pub extrapolated: bool,
    /// Panel (a): CAKE observed average DRAM bandwidth, GB/s.
    pub cake_dram_bw: f64,
    /// Panel (a): vendor observed average DRAM bandwidth, GB/s.
    pub vendor_dram_bw: f64,
    /// Panel (a): CAKE theoretically optimal DRAM bandwidth (Eq. 4), GB/s.
    pub cake_optimal_bw: f64,
    /// Panel (b): CAKE throughput, GFLOP/s.
    pub cake_gflops: f64,
    /// Panel (b): vendor throughput, GFLOP/s.
    pub vendor_gflops: f64,
    /// Panel (c): internal bandwidth (measured curve inside the physical
    /// range, linear extrapolation beyond), GB/s.
    pub internal_bw: f64,
}

/// Run the three-panel scaling study on `cpu` for an `n^3` problem,
/// measuring `p = 1..=cpu.cores` and extrapolating to `p_max`.
pub fn scaling_study(cpu: &CpuConfig, n: usize, p_max: usize) -> Vec<ScalingRow> {
    let mut out = Vec::new();
    for p in 1..=p_max {
        let extrapolated = p > cpu.cores;
        let mut sp = SimParams::square(n, p);
        if extrapolated {
            // Paper's extrapolation assumptions: internal BW keeps growing
            // linearly per core, local memory grows quadratically, DRAM
            // bandwidth stays fixed.
            sp.internal_bw_gbs_override = Some(cpu.internal_bw.extrapolated(p));
            let scale = (p as f64 / cpu.cores as f64).powi(2);
            sp.llc_bytes_override = Some((cpu.llc_bytes as f64 * scale) as usize);
        }
        let cake = simulate_cake(cpu, &sp);
        let goto = simulate_goto(cpu, &sp);

        let shape = resolve_cake_shape(cpu, &sp);
        let model = CakeModel::with_mac_rate(
            shape,
            cpu.mr,
            cpu.nr,
            sp.elem_bytes,
            cpu.freq_ghz,
            cpu.macs_per_cycle_f32,
        );

        out.push(ScalingRow {
            p,
            extrapolated,
            cake_dram_bw: cake.avg_dram_bw_gbs,
            vendor_dram_bw: goto.avg_dram_bw_gbs,
            cake_optimal_bw: model.ext_bw_gbs(),
            cake_gflops: cake.gflops,
            vendor_gflops: goto.gflops,
            internal_bw: if extrapolated {
                cpu.internal_bw.extrapolated(p)
            } else {
                cpu.internal_bw_gbs(p)
            },
        });
    }
    out
}

/// Figure 10: Intel i9-10900K, 23040^3 (pass a smaller n for quick runs).
pub fn fig10(n: usize) -> Vec<ScalingRow> {
    let cpu = CpuConfig::intel_i9_10900k();
    scaling_study(&cpu, n, 2 * cpu.cores)
}

/// Figure 11: ARM Cortex-A53, 3000^3.
pub fn fig11(n: usize) -> Vec<ScalingRow> {
    let cpu = CpuConfig::arm_cortex_a53();
    scaling_study(&cpu, n, 2 * cpu.cores)
}

/// Figure 12: AMD Ryzen 9 5950X, 23040^3.
pub fn fig12(n: usize) -> Vec<ScalingRow> {
    let cpu = CpuConfig::amd_ryzen_9_5950x();
    scaling_study(&cpu, n, 2 * cpu.cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_shape_cake_less_dram_stall() {
        let rows = fig7a(2304);
        assert_eq!(rows.len(), 4);
        let dram = rows.iter().find(|r| r.level == "Main Memory").unwrap();
        assert!(dram.cake < dram.vendor, "cake {} vendor {}", dram.cake, dram.vendor);
    }

    #[test]
    fn fig7b_shape_vendor_more_dram_requests() {
        let rows = fig7b(1000);
        let dram = rows.iter().find(|r| r.level == "DRAM Requests").unwrap();
        assert!(dram.vendor > 1.5 * dram.cake);
        let l1 = &rows[0];
        assert!(l1.cake > 0.0 && l1.vendor > 0.0);
    }

    #[test]
    fn fig8_small_m_favors_cake() {
        // GOTO leaves cores idle when M < p * mc; CAKE shrinks its strips.
        let pts = fig8_panel(1, &[1000, 4000]);
        let small = pts.iter().find(|p| p.m == 1000 && p.k == 1000).unwrap();
        let large = pts.iter().find(|p| p.m == 4000 && p.k == 4000).unwrap();
        assert!(small.ratio > 1.2, "small-size ratio {}", small.ratio);
        assert!(small.ratio > large.ratio);
        // At large sizes the two are comparable (within ~25%).
        assert!((0.75..1.35).contains(&large.ratio), "large {}", large.ratio);
    }

    #[test]
    fn fig9_speedups_monotone_and_cake_wins_on_arm() {
        let cpu = CpuConfig::arm_cortex_a53();
        let rows = fig9(&cpu, &[2000]);
        assert_eq!(rows.len(), 4);
        assert!((rows[0].cake - 1.0).abs() < 1e-9);
        for w in rows.windows(2) {
            assert!(w[1].cake >= w[0].cake * 0.99);
        }
        let last = rows.last().unwrap();
        assert!(last.cake > last.vendor, "cake {} vendor {}", last.cake, last.vendor);
    }

    #[test]
    fn fig10_cake_bw_flat_and_below_vendor() {
        let rows = fig10(4608);
        let measured: Vec<&ScalingRow> = rows.iter().filter(|r| !r.extrapolated).collect();
        assert_eq!(measured.len(), 10);
        // Panel (a): CAKE flat; vendor grows.
        let c1 = measured[0].cake_dram_bw;
        let c10 = measured[9].cake_dram_bw;
        assert!(c10 / c1 < 2.0);
        assert!(measured[9].vendor_dram_bw > 2.0 * measured[9].cake_dram_bw);
        // Optimal curve is p-independent.
        let o: Vec<f64> = measured.iter().map(|r| r.cake_optimal_bw).collect();
        assert!(o.iter().all(|&x| (x - o[0]).abs() / o[0] < 0.25), "{o:?}");
        // Panel (b): throughput grows with cores.
        assert!(measured[9].cake_gflops > 5.0 * measured[0].cake_gflops);
    }

    #[test]
    fn fig11_arm_vendor_plateaus() {
        let rows = fig11(3000);
        let measured: Vec<&ScalingRow> = rows.iter().filter(|r| !r.extrapolated).collect();
        let v1 = measured[0].vendor_gflops;
        let v4 = measured[3].vendor_gflops;
        let c4 = measured[3].cake_gflops;
        // Vendor scales sub-linearly (DRAM starved), CAKE clearly better.
        assert!(v4 / v1 < 3.2, "vendor speedup {}", v4 / v1);
        assert!(c4 > 1.2 * v4, "cake {c4} vendor {v4}");
    }

    #[test]
    fn extrapolated_rows_marked_and_scaling() {
        let rows = fig11(1500);
        assert_eq!(rows.len(), 8);
        assert!(rows[4..].iter().all(|r| r.extrapolated));
        assert!(rows[..4].iter().all(|r| !r.extrapolated));
        // Extrapolated internal BW is linear in p across the dashed region.
        let slope = rows[5].internal_bw - rows[4].internal_bw;
        assert!((rows[7].internal_bw - rows[4].internal_bw - 3.0 * slope).abs() < 1e-9);
        assert!(slope > 0.0);
    }

    #[test]
    fn vendor_names() {
        assert_eq!(vendor_name(&CpuConfig::intel_i9_10900k()), "MKL(GOTO)");
        assert_eq!(vendor_name(&CpuConfig::amd_ryzen_9_5950x()), "OpenBLAS(GOTO)");
        assert_eq!(vendor_name(&CpuConfig::arm_cortex_a53()), "ARMPL(GOTO)");
    }
}
