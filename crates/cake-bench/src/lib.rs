//! Experiment harness for the CAKE paper's evaluation.
//!
//! One binary per table/figure (see `src/bin/`); this library holds the
//! figure runners so they are unit-testable and reusable:
//!
//! | Target    | Paper artifact | Content |
//! |-----------|----------------|---------|
//! | `table2`  | Table 2        | CPU configurations |
//! | `fig7`    | Figure 7a/7b   | stalls / cache + DRAM accesses, CAKE vs vendor |
//! | `fig8`    | Figure 8a–d    | relative-throughput contours over (M, K) |
//! | `fig9`    | Figure 9a/9b   | speedup vs cores, square matrices |
//! | `fig10`   | Figure 10a–c   | Intel: DRAM BW / throughput / internal BW |
//! | `fig11`   | Figure 11a–c   | ARM: same three panels |
//! | `fig12`   | Figure 12a–c   | AMD: same three panels |
//! | `sweep`   | (native)       | real-machine CAKE vs GOTO vs naive timing |
//!
//! Each runner returns typed rows; binaries print an aligned table and
//! write `results/<name>.csv`. [`scaling`] holds the multicore p-sweep
//! (Figure 13's strong-scaling measurement plus the counter-invariance
//! gate) shared by `bench_snapshot` and `cakectl gemm --threads`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod figures;
pub mod harness;
pub mod output;
pub mod scaling;
pub mod tune;
