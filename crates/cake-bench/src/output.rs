//! CSV and aligned-table output helpers for the figure binaries — and the
//! documented schema of the checked-in `BENCH_gemm.json` snapshot that
//! `bench_snapshot` emits.
//!
//! # `BENCH_gemm.json` schema
//!
//! Top-level fields:
//!
//! - `benchmark`, `threads`, `iters` — provenance: the binary name, the
//!   `--p` the single-threaded shape rows ran at, and best-of iteration
//!   count.
//! - `host` — where the numbers came from, so a snapshot regenerated on a
//!   different machine is self-describing:
//!   - `cores`: cores available to the process when the run started
//!     (`cake_core::topology::available_cores`).
//!   - `scale_gate`: outcome of the same-host scaling sanity check
//!     (`cake_bench::scaling::scaling_sane`). `"ok: checked on N core(s)"`
//!     when the host had real headroom, or an explicit
//!     `"skipped: host has N core(s), ..."` — a 1-core host cannot
//!     demonstrate a multicore win and the snapshot says so rather than
//!     passing vacuously.
//! - `gemm` — per-shape rows: CAKE vs GOTO vs naive GFLOP/s, post-warmup
//!   allocations, pack fraction, overlap efficiency, block/barrier counts.
//!   Each row also records `kernel`: the microkernel name the dispatcher
//!   selected for that run (e.g. `"avx512_f32_14x32"`), so a snapshot is
//!   attributable to a tier even when regenerated on a different host.
//! - `kernel_tiers` — per-shape A/B sweep over every tier *available on
//!   this host* (`cake_kernels::available_tiers()`), single-threaded on a
//!   fixed block grid. Each point carries `tier` (`"portable"`, `"avx2"`,
//!   `"avx512"`), `kernel` (the concrete microkernel name), its `mr`/`nr`
//!   tile shape, `cake_gflops`, and the `a_elems`/`b_elems`/`c_elems`
//!   pack counters — which must be identical across tiers (the run aborts
//!   otherwise): packing traffic depends on the block grid, never on the
//!   microkernel tile. This section is how the snapshot documents the
//!   prefetch/vector-width gain (or explicit parity) between tiers.
//! - `dtypes` — per-shape narrow-dtype sweep: one single-threaded GEMM per
//!   supported dtype (`"f32"`, `"f64"`, `"bf16"`, `"int8"`) on a fixed
//!   block grid, each through its own best-tier kernel. Each point carries:
//!   - `dtype`: operand dtype name as reported by `Dtype::NAME`,
//!   - `kernel`: the per-dtype microkernel the ladder dispatched (e.g.
//!     `"avx512_vnni_i8_16x16"`),
//!   - `elem_bytes` / `acc_bytes`: operand and accumulator widths — the
//!     narrow tier's whole point is `elem_bytes` shrinking while the
//!     accumulator stays wide (i8→i32, bf16→f32),
//!   - `gops`: best-of-iters throughput in GOP/s, counting `2mkn` ops for
//!     every dtype so the column directly shows the narrow-dtype speedup
//!     over the f32 row,
//!   - `allocs_after_warmup`: workspace allocations summed over the timed
//!     iterations — must be 0 for every dtype (the zero-alloc warm-path
//!     guarantee is dtype-independent; the run aborts otherwise),
//!   - `a_elems` / `b_elems` / `c_elems`: pack-element counters, identical
//!     across dtypes by construction (element movement is a property of
//!     the block schedule, never of the element width; the run aborts on
//!     divergence — only the *byte* traffic, `elems * elem_bytes`,
//!     shrinks with the dtype).
//! - `scaling` — per-shape strong-scaling sweeps over a fixed block grid.
//!   Each point carries:
//!   - `p`: requested worker count (drives block shape and the model),
//!   - `effective_p`: workers actually spawned after the topology clamp
//!     (`min(p, cores)`) — a speedup of ~1.0 with `effective_p = 1` is a
//!     clamped run, not a scaling regression,
//!   - `barrier_mode`: `"spin"` or `"park"` as selected by
//!     `BarrierMode::auto(p, cores)`,
//!   - `kernel`: the microkernel name used at this `p` (same dispatcher
//!     as the gemm rows; recorded per point because a regenerated
//!     snapshot may mix hosts),
//!   - `cake_gflops`, `speedup`, `efficiency` (speedup over the first
//!     point and `speedup / p`),
//!   - `a_elems` / `b_elems` / `c_elems`: measured pack-element counters,
//!     identical across `p` by construction (the run aborts otherwise),
//!   - `barrier_wait_ns_max` / `barrier_wait_ns_sum`, `imbalance`.
//! - `sim` — simulated p-sweeps from the discrete-event engine
//!   (`cake_sim::engine`), one entry per Table-2 CPU. Unlike every other
//!   section these numbers involve no wall clock: they are bit-identical
//!   on any host, so a diff in this section always means the simulator or
//!   the shaping changed, never the machine. Each entry carries `cpu`
//!   (the Table-2 name), `n` (the square problem side), and `points`:
//!   - `p`: simulated core count,
//!   - `cake_gflops` / `goto_gflops`: simulated throughput of each
//!     schedule (Figures 9b/10b/11b/12b),
//!   - `cake_dram_gbs` / `goto_dram_gbs`: average DRAM bandwidth — CAKE's
//!     column stays flat in `p` (Eq. 4) while GOTO's grows until the
//!     machine's usable bandwidth caps it (Figures 10a/11a/12a),
//!   - `cake_dram_bytes` / `goto_dram_bytes`: exact traffic counters
//!     (u64; equal to the `cake_core::traffic` closed-form tally),
//!   - `events`: discrete events processed for the two runs combined.
//! - `autotune` — the closed tuning loop per fixed shape × dtype: each row
//!   records what `cake_bench::tune::autotune_shape` found when it ranked
//!   the deterministic candidate grid (`cake_core::tune::candidate_points`)
//!   on a host-shaped simulator config (`CpuConfig::detected_host`) and
//!   re-measured the top-K leaders plus the closed-form default with short
//!   on-host GEMM runs. Fields per row:
//!   - `m` / `k` / `n` / `dtype`: the tune point,
//!   - `default_gflops`: the measured closed-form (`tuned_for`) baseline,
//!   - `tuned_gflops`: the measured winner — **never below
//!     `default_gflops`** because the default competes in the measured
//!     round and wins ties (the run aborts if the invariant is violated),
//!   - `speedup`: `tuned_gflops / default_gflops` (>= 1.0; equal to 1.0
//!     means the closed form already won on this host),
//!   - `mc` / `kc` / `nc` / `tier`: the winning block shape and kernel
//!     tier, i.e. the `TunedEntry` a `CakeConfig::autotuned_for` cache hit
//!     would pin,
//!   - `sim_evaluations`: simulator runs spent ranking the candidate grid
//!     (the cheap stage that kept the measured stage down to K+1 runs).
//! - `dnn_forward` — tiny CNN forward pass: cold vs warm seconds, warm
//!   GFLOP/s, warm allocations.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Directory results are written to (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CAKE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Write `header` + `rows` to `results/<name>.csv`; returns the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(path)
}

/// Render rows of equal arity as an aligned text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}", w = *w));
        }
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format a float with 2 decimals (table cells).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Check if `--flag` is present in the process args.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Value of `--key value` in the process args.
pub fn arg_value(key: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == key {
            return args.next();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.00"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join(format!("cake_test_{}", std::process::id()));
        std::env::set_var("CAKE_RESULTS_DIR", &dir);
        let path = write_csv("unit", "a,b", &["1,2".to_string()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
        std::env::remove_var("CAKE_RESULTS_DIR");
    }

    #[test]
    fn results_dir_honors_env() {
        std::env::set_var("CAKE_RESULTS_DIR", "/tmp/xyz");
        assert_eq!(results_dir(), PathBuf::from("/tmp/xyz"));
        std::env::remove_var("CAKE_RESULTS_DIR");
    }
}

/// Render one or more named series as an ASCII line chart (the terminal
/// stand-in for the paper's plots). Each series is a list of `(x, y)`
/// points; x values are assumed shared/ordered.
pub fn ascii_chart(title: &str, series: &[(&str, Vec<(f64, f64)>)], height: usize) -> String {
    const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@'];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, pts)| pts.iter().copied()).collect();
    if all.is_empty() || height < 2 {
        out.push_str("(no data)\n");
        return out;
    }
    let (xmin, xmax) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| (lo.min(p.0), hi.max(p.0)));
    let (ymin, ymax) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| (lo.min(p.1), hi.max(p.1)));
    let yspan = (ymax - ymin).max(1e-12);
    let xspan = (xmax - xmin).max(1e-12);
    let width = 64usize;

    let mut canvas = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in pts {
            let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let row = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
            let r = height - 1 - row;
            canvas[r][col.min(width - 1)] = mark;
        }
    }
    for (r, line) in canvas.iter().enumerate() {
        let label = if r == 0 {
            format!("{ymax:>10.2} |")
        } else if r == height - 1 {
            format!("{ymin:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>11}+{}\n", "", "-".repeat(width)));
    out.push_str(&format!("{:>12}{:<.1}{:>width$.1}\n", "", xmin, xmax, width = width - 3));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", MARKS[i % MARKS.len()], name))
        .collect();
    out.push_str(&format!("{:>12}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod chart_tests {
    use super::ascii_chart;

    #[test]
    fn chart_renders_all_series() {
        let s1: Vec<(f64, f64)> = (1..=10).map(|p| (p as f64, p as f64 * 2.0)).collect();
        let s2: Vec<(f64, f64)> = (1..=10).map(|p| (p as f64, 5.0)).collect();
        let chart = ascii_chart("test", &[("grows", s1), ("flat", s2)], 10);
        assert!(chart.contains("test"));
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("grows"));
        assert!(chart.contains("flat"));
        // y-axis labels present.
        assert!(chart.contains("20.00"));
    }

    #[test]
    fn empty_series_is_graceful() {
        let chart = ascii_chart("empty", &[("none", vec![])], 8);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 3.0)).collect();
        let chart = ascii_chart("const", &[("c", s)], 5);
        assert!(chart.contains('*'));
    }
}
