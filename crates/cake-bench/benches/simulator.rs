//! Simulator performance: cost of regenerating the paper's figures.

use cake_bench::harness::{BenchmarkId, Criterion};
use cake_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use cake_sim::cache::Hierarchy;
use cake_sim::config::CpuConfig;
use cake_sim::engine::{simulate_cake, simulate_goto, SimParams};
use cake_sim::trace::run_cake_trace;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    let intel = CpuConfig::intel_i9_10900k();
    for &n in &[4608usize, 23040] {
        group.bench_with_input(BenchmarkId::new("cake", n), &n, |bch, &n| {
            bch.iter(|| black_box(simulate_cake(&intel, &SimParams::square(n, 10)).gflops))
        });
        group.bench_with_input(BenchmarkId::new("goto", n), &n, |bch, &n| {
            bch.iter(|| black_box(simulate_goto(&intel, &SimParams::square(n, 10)).gflops))
        });
    }
    group.finish();
}

fn bench_cache_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_cache");
    group.bench_function("hierarchy_100k_accesses", |bch| {
        bch.iter(|| {
            let mut h = Hierarchy::new(4, 32 * 1024, 256 * 1024, 4 * 1024 * 1024);
            for i in 0..100_000u64 {
                h.access((i % 4) as usize, i % 977, 4096, i % 3 == 0);
            }
            black_box(h.stats.dram_accesses)
        })
    });
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_trace");
    group.sample_size(10);
    let arm = CpuConfig::arm_cortex_a53();
    group.bench_function("cake_arm_600", |bch| {
        bch.iter(|| black_box(run_cake_trace(&arm, &SimParams::square(600, 4)).dram_accesses))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine, bench_cache_hierarchy, bench_trace
}
criterion_main!(benches);
