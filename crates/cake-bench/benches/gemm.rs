//! End-to-end GEMM benchmarks: CAKE vs GOTO vs naive on this machine.
//!
//! Complements the simulator figures with real wall-clock numbers. On a
//! single-core sandbox these validate the sequential paths; on a real
//! multi-core machine they reproduce the paper's native comparison.

use cake_bench::harness::{BenchmarkId, Criterion, Throughput};
use cake_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use cake_core::api::{cake_sgemm, CakeConfig};
use cake_goto::api::{goto_gemm, GotoConfig};
use cake_goto::naive::naive_gemm_ikj;
use cake_matrix::{init, Matrix};

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_square_f32");
    for &n in &[128usize, 256, 512] {
        let a = init::random::<f32>(n, n, 1);
        let b = init::random::<f32>(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));

        let cfg = CakeConfig::with_threads(1);
        group.bench_with_input(BenchmarkId::new("cake", n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = Matrix::<f32>::zeros(n, n);
                cake_sgemm(black_box(&a), black_box(&b), &mut out, &cfg);
                black_box(out.get(0, 0))
            })
        });

        let gcfg = GotoConfig::with_threads(1);
        group.bench_with_input(BenchmarkId::new("goto", n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = Matrix::<f32>::zeros(n, n);
                goto_gemm(black_box(&a), black_box(&b), &mut out, &gcfg);
                black_box(out.get(0, 0))
            })
        });

        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("naive_ikj", n), &n, |bch, _| {
                bch.iter(|| {
                    let mut out = Matrix::<f32>::zeros(n, n);
                    naive_gemm_ikj(black_box(&a), black_box(&b), &mut out);
                    black_box(out.get(0, 0))
                })
            });
        }
    }
    group.finish();
}

fn bench_skewed(c: &mut Criterion) {
    // Skewed shapes from the paper's Figure 8 study (small K = low AI).
    let mut group = c.benchmark_group("gemm_skewed_f32");
    let shapes = [(512usize, 64usize, 512usize), (64, 512, 64), (512, 512, 64)];
    for &(m, k, n) in &shapes {
        let a = init::random::<f32>(m, k, 3);
        let b = init::random::<f32>(k, n, 4);
        let label = format!("{m}x{k}x{n}");
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        let cfg = CakeConfig::with_threads(1);
        group.bench_function(BenchmarkId::new("cake", &label), |bch| {
            bch.iter(|| {
                let mut out = Matrix::<f32>::zeros(m, n);
                cake_sgemm(black_box(&a), black_box(&b), &mut out, &cfg);
                black_box(out.get(0, 0))
            })
        });
        let gcfg = GotoConfig::with_threads(1);
        group.bench_function(BenchmarkId::new("goto", &label), |bch| {
            bch.iter(|| {
                let mut out = Matrix::<f32>::zeros(m, n);
                goto_gemm(black_box(&a), black_box(&b), &mut out, &gcfg);
                black_box(out.get(0, 0))
            })
        });
    }
    group.finish();
}

fn bench_f64(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_square_f64");
    let n = 256;
    let a = init::random::<f64>(n, n, 5);
    let b = init::random::<f64>(n, n, 6);
    group.throughput(Throughput::Elements((2 * n * n * n) as u64));
    let cfg = CakeConfig::with_threads(1);
    group.bench_function("cake_256", |bch| {
        bch.iter(|| {
            let mut out = Matrix::<f64>::zeros(n, n);
            cake_core::api::cake_dgemm(black_box(&a), black_box(&b), &mut out, &cfg);
            black_box(out.get(0, 0))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_square, bench_skewed, bench_f64
}
criterion_main!(benches);
