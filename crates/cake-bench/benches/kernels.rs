//! Microkernel benchmarks: SIMD vs portable, full vs edge tiles, packing.

use cake_bench::harness::{BenchmarkId, Criterion, Throughput};
use cake_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use cake_kernels::edge::run_tile;
use cake_kernels::pack::{pack_a, pack_b, packed_a_size, packed_b_size};
use cake_kernels::select::{best_kernel, portable_kernel};
use cake_kernels::Ukr;
use cake_matrix::init;

fn bench_kernel(c: &mut Criterion, name: &str, ukr: Ukr<f32>) {
    let mut group = c.benchmark_group(format!("ukernel_{name}"));
    let (mr, nr) = (ukr.mr(), ukr.nr());
    for &kc in &[32usize, 128, 512] {
        let a = init::random::<f32>(mr, kc, 1);
        let b = init::random::<f32>(kc, nr, 2);
        let mut pa = vec![0.0f32; packed_a_size(mr, kc, mr)];
        let mut pb = vec![0.0f32; packed_b_size(kc, nr, nr)];
        pack_a(&a.view(), &mut pa, mr);
        pack_b(&b.view(), &mut pb, nr);
        let mut ct = vec![0.0f32; mr * nr];
        group.throughput(Throughput::Elements((2 * mr * nr * kc) as u64));
        group.bench_with_input(BenchmarkId::new("full_tile", kc), &kc, |bch, &kc| {
            bch.iter(|| {
                // SAFETY: pa/pb are full packed slivers and ct is a dense
                // mr x nr tile with rsc=nr, csc=1.
                unsafe {
                    ukr.call(kc, pa.as_ptr(), pb.as_ptr(), ct.as_mut_ptr(), nr, 1);
                }
                black_box(ct[0])
            })
        });
        // Edge path: one row / one column short of a full tile.
        group.bench_with_input(BenchmarkId::new("edge_tile", kc), &kc, |bch, &kc| {
            bch.iter(|| {
                // SAFETY: pa/pb are full packed slivers; the (mr-1)x(nr-1)
                // edge region stays inside the mr x nr tile ct.
                unsafe {
                    run_tile(
                        &ukr,
                        kc,
                        pa.as_ptr(),
                        pb.as_ptr(),
                        ct.as_mut_ptr(),
                        nr,
                        1,
                        mr - 1,
                        nr - 1,
                    );
                }
                black_box(ct[0])
            })
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    bench_kernel(c, "best", best_kernel::<f32>());
    if best_kernel::<f32>().name() != portable_kernel::<f32>().name() {
        bench_kernel(c, "portable", portable_kernel::<f32>());
    }
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    let (mc, kc, nc) = (192usize, 192usize, 1536usize);
    let a = init::random::<f32>(mc, kc, 3);
    let b = init::random::<f32>(kc, nc, 4);
    let mut pa = vec![0.0f32; packed_a_size(mc, kc, 6)];
    let mut pb = vec![0.0f32; packed_b_size(kc, nc, 16)];
    group.throughput(Throughput::Bytes((mc * kc * 4) as u64));
    group.bench_function("pack_a_192x192", |bch| {
        bch.iter(|| {
            pack_a(black_box(&a.view()), &mut pa, 6);
            black_box(pa[0])
        })
    });
    group.throughput(Throughput::Bytes((kc * nc * 4) as u64));
    group.bench_function("pack_b_192x1536", |bch| {
        bch.iter(|| {
            pack_b(black_box(&b.view()), &mut pb, 16);
            black_box(pb[0])
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels, bench_packing
}
criterion_main!(benches);
