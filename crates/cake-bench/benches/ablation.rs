//! Ablations over CAKE's design choices (DESIGN.md section 5).
//!
//! * `alpha`: CB aspect factor sweep — wall time should be flat on a
//!   compute-bound machine while the simulator shows the DRAM trade.
//! * `snake_vs_naive`: Algorithm 2's direction flipping vs plain loops,
//!   measured as DRAM-traffic accounting over the two schedules.
//! * `lru_sizing`: blocks sized by the Section 4.3 rule vs blocks that
//!   ignore it (fill the whole LLC) — real wall time, real caches.
//! * `reuse_priority`: K-first vs the M-first/N-first generalization.

use cake_bench::harness::{BenchmarkId, Criterion};
use cake_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use cake_core::api::{cake_sgemm, CakeConfig};
use cake_core::schedule::{BlockGrid, Dim, KFirstSchedule, OuterLoop, SnakeSchedule};
use cake_core::traffic::{dram_traffic, CResidency, TrafficParams};
use cake_matrix::{init, Matrix};

fn ablate_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_alpha");
    let n = 384;
    let a = init::random::<f32>(n, n, 1);
    let b = init::random::<f32>(n, n, 2);
    for &alpha in &[1.0f64, 2.0, 4.0, 8.0] {
        let cfg = CakeConfig {
            threads: Some(1),
            alpha: Some(alpha),
            ..CakeConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |bch, _| {
            bch.iter(|| {
                let mut out = Matrix::<f32>::zeros(n, n);
                cake_sgemm(black_box(&a), black_box(&b), &mut out, &cfg);
                black_box(out.get(0, 0))
            })
        });
    }
    group.finish();
}

fn ablate_snake(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_snake_traffic");
    let tp = TrafficParams { m: 2048, k: 2048, n: 2048, bm: 128, bk: 128, bn: 128 };
    let grid = BlockGrid::for_problem(tp.m, tp.k, tp.n, tp.bm, tp.bk, tp.bn);
    group.bench_function("snake", |bch| {
        bch.iter(|| {
            let t = dram_traffic(
                KFirstSchedule::with_outer(grid, OuterLoop::NOuter),
                black_box(tp),
                CResidency::HoldInLlc,
            );
            black_box(t.total())
        })
    });
    group.bench_function("no_snake", |bch| {
        bch.iter(|| {
            let t = dram_traffic(
                KFirstSchedule::without_snaking(grid, OuterLoop::NOuter),
                black_box(tp),
                CResidency::HoldInLlc,
            );
            black_box(t.total())
        })
    });
    group.finish();
}

fn ablate_lru_sizing(c: &mut Criterion) {
    // Real hardware effect: blocks obeying C + 2(A+B) <= S vs blocks that
    // pretend the LLC is 4x larger (over-sized working set thrashes).
    let mut group = c.benchmark_group("ablation_lru_sizing");
    let n = 512;
    let a = init::random::<f32>(n, n, 3);
    let b = init::random::<f32>(k_of(n), n, 4);
    fn k_of(n: usize) -> usize {
        n
    }
    let honest = CakeConfig {
        threads: Some(1),
        ..CakeConfig::default()
    };
    let oversized = CakeConfig {
        threads: Some(1),
        llc_bytes: 64 * 1024 * 1024, // larger than this machine's LLC
        l2_bytes: 4 * 1024 * 1024,
        ..CakeConfig::default()
    };
    for (name, cfg) in [("rule_sized", &honest), ("oversized", &oversized)] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let mut out = Matrix::<f32>::zeros(n, n);
                cake_sgemm(black_box(&a), black_box(&b), &mut out, cfg);
                black_box(out.get(0, 0))
            })
        });
    }
    group.finish();
}

fn ablate_reuse_priority(c: &mut Criterion) {
    // Which surface to reuse on every step: inner K (paper, partial-C),
    // inner N (A), inner M (B) — traffic accounting over the generalized
    // snake schedule shows why the paper picks reduction-first for CB
    // blocks, and the outer-loop choice from Section 2.2.
    let mut group = c.benchmark_group("ablation_reuse_priority");
    let tp = TrafficParams { m: 1024, k: 4096, n: 1024, bm: 128, bk: 128, bn: 128 };
    let grid = BlockGrid::for_problem(tp.m, tp.k, tp.n, tp.bm, tp.bk, tp.bn);
    let orders: [(&str, [Dim; 3]); 3] = [
        ("inner_k", [Dim::N, Dim::M, Dim::K]),
        ("inner_n", [Dim::K, Dim::M, Dim::N]),
        ("inner_m", [Dim::K, Dim::N, Dim::M]),
    ];
    for (name, order) in orders {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let t = dram_traffic(
                    SnakeSchedule::new(grid, order),
                    black_box(tp),
                    CResidency::HoldInLlc,
                );
                black_box(t.total())
            })
        });
    }
    for (name, outer) in [("n_outer", OuterLoop::NOuter), ("m_outer", OuterLoop::MOuter)] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let t = dram_traffic(
                    KFirstSchedule::with_outer(grid, outer),
                    black_box(tp),
                    CResidency::HoldInLlc,
                );
                black_box(t.total())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablate_alpha, ablate_snake, ablate_lru_sizing, ablate_reuse_priority
}
criterion_main!(benches);
