//! Scheduling machinery benchmarks: iteration, traffic accounting, shape
//! derivation — the "no design search" cost CAKE replaces grid search with.

use cake_bench::harness::{BenchmarkId, Criterion, Throughput};
use cake_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use cake_core::schedule::{BlockGrid, KFirstSchedule, OuterLoop};
use cake_core::shape::CbBlockShape;
use cake_core::traffic::{dram_traffic, CResidency, TrafficParams};

fn bench_schedule_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_iteration");
    for &side in &[16usize, 48] {
        let grid = BlockGrid { mb: side, kb: side, nb: side };
        group.throughput(Throughput::Elements(grid.len() as u64));
        group.bench_with_input(BenchmarkId::new("snake", side), &side, |bch, _| {
            bch.iter(|| {
                let mut acc = 0usize;
                for coord in KFirstSchedule::with_outer(grid, OuterLoop::NOuter) {
                    acc = acc.wrapping_add(coord.m ^ coord.k ^ coord.n);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_traffic_accounting(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic_accounting");
    let tp = TrafficParams { m: 4096, k: 4096, n: 4096, bm: 256, bk: 128, bn: 256 };
    let grid = BlockGrid::for_problem(tp.m, tp.k, tp.n, tp.bm, tp.bk, tp.bn);
    group.throughput(Throughput::Elements(grid.len() as u64));
    for policy in [CResidency::HoldInLlc, CResidency::StreamToDram] {
        group.bench_function(format!("{policy:?}"), |bch| {
            bch.iter(|| {
                let t = dram_traffic(
                    KFirstSchedule::new(grid, tp.m, tp.n),
                    black_box(tp),
                    policy,
                );
                black_box(t.total())
            })
        });
    }
    group.finish();
}

fn bench_shape_derivation(c: &mut Criterion) {
    // The entire "design search" CAKE needs: closed-form, microseconds —
    // contrast with the grid searches the paper's intro criticizes.
    let mut group = c.benchmark_group("shape_derivation");
    group.bench_function("derive_intel_10c", |bch| {
        bch.iter(|| {
            let s = CbBlockShape::derive(
                black_box(10),
                black_box(1.0),
                256 * 1024,
                20 * 1024 * 1024,
                4,
                6,
                16,
            );
            black_box(s.nc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedule_iteration, bench_traffic_accounting, bench_shape_derivation
}
criterion_main!(benches);
