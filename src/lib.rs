//! # CAKE — Matrix Multiplication Using Constant-Bandwidth Blocks
//!
//! Facade crate for the reproduction of Kung, Natesh & Sabot,
//! *"CAKE: Matrix Multiplication Using Constant-Bandwidth Blocks"* (SC '21).
//!
//! The workspace is organized bottom-up:
//!
//! * [`matrix`] — dense matrix substrate (storage, views, partitioning).
//! * [`kernels`] — register-blocked SIMD microkernels.
//! * [`core`] — the paper's contribution: CB-block shaping, the K-first
//!   snake schedule, the analytical resource model, and the threaded
//!   drop-in GEMM ([`core::api::cake_sgemm`] / [`core::api::cake_dgemm`]).
//! * [`goto`] — the GOTO-algorithm baseline the paper compares against.
//! * [`sim`] — the packet-based architecture simulator used to reproduce
//!   the paper's multi-core evaluation figures.
//! * [`dnn`] — the paper's motivating workload: CNN forward passes as one
//!   CAKE GEMM per layer (im2col convolution, linear layers).
//!
//! ## Quickstart
//!
//! ```
//! use cake::prelude::*;
//!
//! let m = 64;
//! let k = 48;
//! let n = 80;
//! let a = cake::matrix::init::random::<f32>(m, k, 1);
//! let b = cake::matrix::init::random::<f32>(k, n, 2);
//! let mut c = Matrix::<f32>::zeros(m, n);
//!
//! // Drop-in GEMM: C += A * B using constant-bandwidth blocks.
//! cake_sgemm(&a, &b, &mut c, &CakeConfig::default());
//!
//! let mut reference = Matrix::<f32>::zeros(m, n);
//! cake::goto::naive::naive_gemm(&a, &b, &mut reference);
//! assert!(cake::matrix::approx_eq(&c, &reference, 1e-3));
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub use cake_core as core;
pub use cake_dnn as dnn;
pub use cake_goto as goto;
pub use cake_kernels as kernels;
pub use cake_matrix as matrix;
pub use cake_sim as sim;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use cake_core::api::{cake_dgemm, cake_gemm, cake_sgemm, CakeConfig};
    pub use cake_core::model::CakeModel;
    pub use cake_core::shape::CbBlockShape;
    pub use cake_goto::api::{goto_gemm, GotoConfig};
    pub use cake_matrix::{approx_eq, Layout, Matrix};
    pub use cake_sim::config::CpuConfig;
}
